"""Wire-type contracts: lossless JSON round trips, version rejection.

The facade's compatibility promise is mechanical: for every request and
response type, ``from_dict(to_dict(x)) == x`` -- through real JSON, so
tuples survive the list detour -- and payloads from an unknown schema
version die with :class:`SchemaVersionError` instead of being misread.
"""

import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import types as T
from repro.core.models import Model
from repro.core.swapping import SwapEstimator
from repro.engine.sweep import NAMED_SWEEPS
from repro.pipeline.policies import II_ESCALATIONS, SPILL_POLICIES
from repro.workloads.kernels import kernel_names

MODELS = [m.value for m in Model]
ESTIMATORS = [e.value for e in SwapEstimator]
POLICIES = sorted(SPILL_POLICIES)
ESCALATIONS = sorted(II_ESCALATIONS)

# ----------------------------------------------------------------------
# Strategies: always-valid instances of every wire type
# ----------------------------------------------------------------------
loop_specs = st.one_of(
    st.sampled_from(kernel_names()).map(
        lambda name: T.LoopSpec(kind="kernel", name=name)
    ),
    st.just(T.LoopSpec(kind="example")),
    st.builds(
        lambda n, seed, index: T.LoopSpec(
            kind="suite", n_loops=n, seed=seed, index=index % n
        ),
        st.integers(1, 64),
        st.integers(0, 2**31 - 1),
        st.integers(0, 63),
    ),
)

machine_specs = st.one_of(
    st.builds(
        lambda latency: T.MachineSpec(kind="paper", latency=latency),
        st.integers(1, 8),
    ),
    st.builds(
        lambda ports, latency: T.MachineSpec(
            kind="pxly", ports=ports, latency=latency
        ),
        st.integers(1, 4),
        st.integers(1, 8),
    ),
    st.builds(
        lambda clusters: T.MachineSpec(kind="clustered", clusters=clusters),
        st.integers(1, 4),
    ),
    st.just(T.MachineSpec(kind="example")),
)

maybe_machine = st.one_of(st.none(), machine_specs)

schedule_requests = st.builds(
    T.ScheduleRequest, loop=loop_specs, machine=maybe_machine
)

pressure_requests = st.builds(
    T.PressureRequest,
    loop=loop_specs,
    machine=maybe_machine,
    swap_estimator=st.one_of(st.none(), st.sampled_from(ESTIMATORS)),
)

evaluate_requests = st.builds(
    T.EvaluateRequest,
    loop=loop_specs,
    machine=maybe_machine,
    model=st.sampled_from(MODELS),
    register_budget=st.one_of(st.none(), st.integers(1, 256)),
    swap_estimator=st.one_of(st.none(), st.sampled_from(ESTIMATORS)),
    victim_policy=st.one_of(st.none(), st.sampled_from(POLICIES)),
    ii_escalation=st.one_of(st.none(), st.sampled_from(ESCALATIONS)),
    max_rounds=st.integers(1, 500),
)


@st.composite
def sweep_requests(draw):
    name = draw(st.sampled_from(sorted(NAMED_SWEEPS)))
    pressure_kind = NAMED_SWEEPS[name].kind == "pressure"
    maybe = lambda strategy: draw(st.one_of(st.none(), strategy))  # noqa: E731
    return T.SweepRequest(
        name=name,
        n_loops=maybe(st.integers(1, 64)),
        seeds=maybe(st.tuples(st.integers(0, 2**31 - 1))),
        latencies=maybe(st.sampled_from([(3,), (6,), (3, 6)])),
        budgets=(
            None
            if pressure_kind
            else maybe(st.sampled_from([(16,), (32, 64)]))
        ),
        victim_policies=(
            None
            if pressure_kind
            else maybe(
                st.lists(
                    st.sampled_from(POLICIES), min_size=1, unique=True
                ).map(tuple)
            )
        ),
        ii_escalation=(
            None if pressure_kind else maybe(st.sampled_from(ESCALATIONS))
        ),
    )


experiment_requests = st.builds(
    T.ExperimentRequest,
    name=st.sampled_from(["figure6", "table1", "suite", "rf-size"]),
    params=st.dictionaries(
        st.sampled_from(["loops", "seed"]), st.integers(1, 100), max_size=2
    ),
)

report_requests = st.builds(
    T.ReportRequest,
    n_loops=st.integers(1, 800),
    spill_loops=st.one_of(st.none(), st.integers(1, 200)),
    fmt=st.sampled_from(["md", "html"]),
    out_dir=st.one_of(st.none(), st.just("some/dir")),
    check=st.booleans(),
    include_text=st.booleans(),
    stamp=st.booleans(),
)

responses = st.one_of(
    st.builds(
        T.PressureResponse,
        loop_name=st.text(max_size=12),
        machine=st.text(max_size=8),
        trip_count=st.integers(1, 10_000),
        ii=st.integers(1, 64),
        mii=st.integers(1, 64),
        unified=st.integers(0, 256),
        partitioned=st.integers(0, 256),
        swapped=st.integers(0, 256),
        max_live=st.integers(0, 256),
        cached=st.booleans(),
    ),
    st.builds(
        T.SweepResponse,
        name=st.text(max_size=8),
        kind=st.sampled_from(["pressure", "evaluate"]),
        description=st.text(max_size=20),
        headers=st.lists(st.text(max_size=6), max_size=3).map(tuple),
        rows=st.lists(
            st.tuples(st.text(max_size=4), st.integers(0, 99)), max_size=3
        ).map(tuple),
        points=st.integers(0, 10_000),
        elapsed=st.floats(0, 1e6, allow_nan=False),
        cache_hits=st.integers(0, 10_000),
        cache_misses=st.integers(0, 10_000),
        text=st.text(max_size=40),
    ),
    st.builds(
        T.ReportResponse,
        ok=st.booleans(),
        n_loops=st.integers(1, 800),
        spill_loops=st.one_of(st.none(), st.integers(1, 200)),
        fmt=st.sampled_from(["md", "html"]),
        checks_gated=st.integers(0, 40),
        failed_keys=st.lists(st.text(max_size=8), max_size=3).map(tuple),
        summary=st.text(max_size=40),
        path=st.one_of(st.none(), st.just("report/report.md")),
        text=st.one_of(st.none(), st.text(max_size=40)),
    ),
)

any_request = st.one_of(
    schedule_requests,
    pressure_requests,
    evaluate_requests,
    sweep_requests(),
    experiment_requests,
    report_requests,
)

_ROUND_TRIP_SETTINGS = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestRoundTrips:
    @given(request=any_request)
    @_ROUND_TRIP_SETTINGS
    def test_request_round_trips_through_json(self, request):
        wire = json.loads(json.dumps(request.to_dict()))
        assert type(request).from_dict(wire) == request

    @given(request=any_request)
    @_ROUND_TRIP_SETTINGS
    def test_generic_decoder_round_trips(self, request):
        wire = json.loads(json.dumps(request.to_dict()))
        assert T.request_from_dict(wire) == request

    @given(response=responses)
    @_ROUND_TRIP_SETTINGS
    def test_response_round_trips_through_json(self, response):
        wire = json.loads(json.dumps(response.to_dict()))
        assert type(response).from_dict(wire) == response
        assert T.response_from_dict(wire) == response

    def test_tuples_survive_the_list_detour(self):
        request = T.SweepRequest(
            name="rf-size", seeds=(1, 2), budgets=(16, 32)
        )
        wire = json.loads(json.dumps(request.to_dict()))
        assert wire["seeds"] == [1, 2]  # JSON has no tuples...
        decoded = T.SweepRequest.from_dict(wire)
        assert decoded.seeds == (1, 2)  # ...but the declared type returns
        assert decoded == request


class TestSchemaVersioning:
    @pytest.mark.parametrize("version", [0, 2, 99, "1", None])
    def test_unknown_versions_rejected(self, version):
        wire = T.PressureRequest(loop=T.LoopSpec(kind="example")).to_dict()
        wire["schema_version"] = version
        with pytest.raises(T.SchemaVersionError):
            T.PressureRequest.from_dict(wire)

    def test_missing_version_defaults_to_current(self):
        wire = T.PressureRequest(loop=T.LoopSpec(kind="example")).to_dict()
        del wire["schema_version"]
        decoded = T.PressureRequest.from_dict(wire)
        assert decoded.schema_version == T.API_SCHEMA_VERSION

    def test_version_rides_every_message(self):
        for cls in (*T.REQUEST_TYPES.values(), *T.RESPONSE_TYPES.values()):
            assert "schema_version" in {
                f.name for f in __import__("dataclasses").fields(cls)
            }, cls


class TestValidation:
    def test_unknown_fields_rejected(self):
        wire = T.ReportRequest().to_dict()
        wire["surprise"] = 1
        with pytest.raises(T.RequestValidationError, match="surprise"):
            T.ReportRequest.from_dict(wire)

    def test_mismatched_type_tag_rejected(self):
        wire = T.ReportRequest().to_dict()
        with pytest.raises(T.RequestValidationError, match="report"):
            T.SweepRequest.from_dict(wire)

    def test_generic_decoder_requires_known_tag(self):
        with pytest.raises(T.RequestValidationError, match="unknown request"):
            T.request_from_dict({"type": "teleport"})
        with pytest.raises(T.RequestValidationError):
            T.request_from_dict([1, 2, 3])

    @pytest.mark.parametrize(
        "bad",
        [
            dict(kind="kernel", name="not-a-kernel"),
            dict(kind="suite", n_loops=0),
            dict(kind="suite", n_loops=4, index=4),
            dict(kind="warp"),
        ],
    )
    def test_bad_loop_specs_rejected(self, bad):
        with pytest.raises(T.RequestValidationError):
            T.LoopSpec(**bad)

    @pytest.mark.parametrize(
        "bad",
        [
            dict(kind="paper", latency=0),
            dict(kind="pxly", ports=0),
            dict(kind="hexagon"),
        ],
    )
    def test_bad_machine_specs_rejected(self, bad):
        with pytest.raises(T.RequestValidationError):
            T.MachineSpec(**bad)

    def test_bad_evaluate_knobs_rejected(self):
        loop = T.LoopSpec(kind="example")
        with pytest.raises(T.RequestValidationError, match="model"):
            T.EvaluateRequest(loop=loop, model="quantum")
        with pytest.raises(T.RequestValidationError, match="victim"):
            T.EvaluateRequest(loop=loop, victim_policy="rng")
        with pytest.raises(T.RequestValidationError, match="register_budget"):
            T.EvaluateRequest(loop=loop, register_budget=0)

    def test_pressure_sweep_rejects_spill_knobs(self):
        with pytest.raises(T.RequestValidationError, match="never spills"):
            T.SweepRequest(name="pressure", victim_policies=("longest",))
        with pytest.raises(T.RequestValidationError, match="never spills"):
            T.SweepRequest(name="clusters", ii_escalation="geometric")

    def test_unknown_sweep_rejected(self):
        with pytest.raises(T.RequestValidationError, match="unknown sweep"):
            T.SweepRequest(name="warp-speed")

    def test_bad_report_format_rejected(self):
        with pytest.raises(T.RequestValidationError, match="format"):
            T.ReportRequest(fmt="pdf")

    def test_unbounded_suite_sizes_rejected(self):
        """A 60-byte request must not commit a shared server to hours."""
        too_many = T.MAX_SUITE_LOOPS + 1
        with pytest.raises(T.RequestValidationError, match="<="):
            T.ReportRequest(n_loops=too_many)
        with pytest.raises(T.RequestValidationError, match="<="):
            T.LoopSpec(kind="suite", n_loops=too_many)
        with pytest.raises(T.RequestValidationError, match="between"):
            T.SweepRequest(name="performance", n_loops=too_many)
        with pytest.raises(T.RequestValidationError, match="between"):
            T.ReportRequest(spill_loops=too_many)
        with pytest.raises(T.RequestValidationError, match="between"):
            T.EvaluateRequest(
                loop=T.LoopSpec(kind="example"), max_rounds=10**9
            )


class TestSpecResolution:
    def test_kernel_spec_resolves_to_named_loop(self):
        loop = T.LoopSpec(kind="kernel", name="daxpy").resolve()
        assert loop.name == "daxpy"

    def test_suite_spec_resolution_is_deterministic(self):
        spec = T.LoopSpec(kind="suite", n_loops=8, seed=7, index=3)
        assert spec.resolve().name == spec.resolve().name

    def test_sweep_request_to_spec_applies_overrides(self):
        spec = T.SweepRequest(
            name="rf-size", n_loops=5, victim_policies=("first",)
        ).to_spec()
        assert spec.n_loops == 5
        assert spec.victim_policies == ("first",)
        assert spec.name == "rf-size"

    def test_machine_specs_resolve_to_expected_names(self):
        assert T.MachineSpec(kind="paper", latency=6).resolve().name
        assert T.MachineSpec(kind="pxly", ports=2, latency=3).resolve().name
