"""The serve front-end: routes, envelopes, shared cache, shutdown."""

import json
import threading
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.api import API_SCHEMA_VERSION, Session
from repro.api.serve import MAX_BODY_BYTES, ReproServer, ServeConfig


def _spawn(config: ServeConfig | None = None):
    session = Session()
    instance = ReproServer(
        ("127.0.0.1", 0), session, config=config
    )
    thread = threading.Thread(target=instance.serve_forever, daemon=True)
    thread.start()
    return session, instance, thread


def _teardown(session, instance, thread):
    instance.shutdown()
    thread.join(timeout=10)
    instance.server_close()
    session.close()


@pytest.fixture()
def server():
    session, instance, thread = _spawn()
    yield instance
    _teardown(session, instance, thread)


def _request(server, method, path, body=None, raw=None):
    """Returns ``(status, decoded_envelope)`` without raising on 4xx/5xx."""
    data = raw
    if body is not None:
        data = json.dumps(body).encode("utf-8")
    request = urllib.request.Request(
        f"http://127.0.0.1:{server.port}{path}",
        data=data,
        headers={"Content-Type": "application/json"},
        method=method,
    )
    try:
        with urllib.request.urlopen(request, timeout=60) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


PRESSURE = {"loop": {"kind": "kernel", "name": "daxpy"}}
EVALUATE = {
    "loop": {"kind": "kernel", "name": "hydro_fragment"},
    "model": "swapped",
    "register_budget": 16,
}


class TestRoutes:
    def test_health_reports_serving_and_counters(self, server):
        status, body = _request(server, "GET", "/v1/health")
        assert status == 200 and body["ok"]
        assert body["result"]["status"] == "serving"
        assert body["result"]["schema_version"] == API_SCHEMA_VERSION
        assert "cache" in body["result"]

    def test_discovery_endpoints(self, server):
        status, body = _request(server, "GET", "/v1/experiments")
        assert status == 200
        assert {e["name"] for e in body["result"]} >= {"figure6", "suite"}
        status, body = _request(server, "GET", "/v1/capabilities")
        assert status == 200
        assert "spill_policies" in body["result"]

    def test_pressure_round_trip(self, server):
        status, body = _request(server, "POST", "/v1/pressure", PRESSURE)
        assert status == 200 and body["ok"]
        result = body["result"]
        assert result["type"] == "pressure.response"
        assert result["unified"] >= result["partitioned"] >= 1

    def test_experiment_endpoint(self, server):
        status, body = _request(
            server, "POST", "/v1/experiment",
            {"name": "cost", "params": {"registers": 32}},
        )
        assert status == 200
        assert "organization" in body["result"]["text"]

    def test_sweep_endpoint(self, server):
        status, body = _request(
            server, "POST", "/v1/sweep", {"name": "rf-size", "n_loops": 3}
        )
        assert status == 200
        assert body["result"]["points"] > 0
        assert len(body["result"]["headers"]) == len(
            body["result"]["rows"][0]
        )


class TestErrorEnvelopes:
    def test_unknown_route_is_404_envelope(self, server):
        status, body = _request(server, "POST", "/v1/teleport", {})
        assert status == 404 and not body["ok"]
        assert body["error"]["type"] == "NotFound"
        status, body = _request(server, "GET", "/v1/teleport")
        assert status == 404 and not body["ok"]

    def test_unknown_schema_version_is_400(self, server):
        payload = dict(PRESSURE, schema_version=99)
        status, body = _request(server, "POST", "/v1/pressure", payload)
        assert status == 400
        assert body["error"]["type"] == "SchemaVersionError"
        assert "99" in body["error"]["message"]

    def test_validation_error_is_400(self, server):
        payload = dict(EVALUATE, register_budget=0)
        status, body = _request(server, "POST", "/v1/evaluate", payload)
        assert status == 400
        assert body["error"]["type"] == "RequestValidationError"

    def test_unknown_experiment_is_404(self, server):
        status, body = _request(
            server, "POST", "/v1/experiment", {"name": "figure0"}
        )
        assert status == 404
        assert body["error"]["type"] == "UnknownExperimentError"

    def test_malformed_json_is_400_not_a_trace(self, server):
        status, body = _request(
            server, "POST", "/v1/pressure", raw=b"{not json"
        )
        assert status == 400
        assert "not JSON" in body["error"]["message"]

    def test_non_object_body_is_400(self, server):
        status, body = _request(server, "POST", "/v1/pressure", body=[1, 2])
        assert status == 400

    def test_report_out_dir_rejected_over_the_wire(self, server):
        """A network peer must not write files with server privileges."""
        status, body = _request(
            server, "POST", "/v1/report",
            {"n_loops": 1, "out_dir": "/tmp/owned"},
        )
        assert status == 400
        assert "out_dir" in body["error"]["message"]
        assert "include_text" in body["error"]["message"]

    def test_negative_content_length_is_400_not_a_hang(self, server):
        import socket

        with socket.create_connection(
            ("127.0.0.1", server.port), timeout=10
        ) as sock:
            sock.sendall(
                b"POST /v1/pressure HTTP/1.1\r\n"
                b"Host: localhost\r\n"
                b"Content-Length: -1\r\n"
                b"\r\n"
            )
            head = sock.recv(64)
        assert b"400" in head.split(b"\r\n", 1)[0]

    def test_oversized_body_is_413(self, server):
        status, body = _request(
            server,
            "POST",
            "/v1/pressure",
            raw=b" " * (MAX_BODY_BYTES + 1),
        )
        assert status == 413
        assert body["error"]["type"] == "PayloadTooLargeError"
        assert body["error"]["status"] == 413
        # The envelope is diagnosable: it names both sizes.
        assert str(MAX_BODY_BYTES) in body["error"]["message"]
        assert str(MAX_BODY_BYTES + 1) in body["error"]["message"]


class TestSharedCache:
    def test_second_identical_request_is_a_cache_hit(self, server):
        _, first = _request(server, "POST", "/v1/evaluate", EVALUATE)
        _, second = _request(server, "POST", "/v1/evaluate", EVALUATE)
        assert first["result"]["cached"] is False
        assert second["result"]["cached"] is True
        assert first["result"]["ii"] == second["result"]["ii"]

    def test_concurrent_clients_share_one_cache(self, server):
        """Two clients hammering identical points: one set of evaluations."""
        def client(_):
            return [
                _request(server, "POST", "/v1/evaluate", EVALUATE)[1][
                    "result"
                ]
                for _ in range(3)
            ]

        with ThreadPoolExecutor(max_workers=2) as pool:
            streams = list(pool.map(client, range(2)))
        results = [r for stream in streams for r in stream]
        assert len({r["ii"] for r in results}) == 1
        # 6 requests for one point: exactly one computed it.
        assert sum(not r["cached"] for r in results) == 1
        _, health = _request(server, "GET", "/v1/health")
        assert health["result"]["cache"]["hits"] >= 5
        assert health["result"]["requests_served"] >= 6


class TestBackpressure:
    def test_rate_limit_answers_429_with_retry_after(self):
        session, instance, thread = _spawn(
            ServeConfig(rate_limit=0.25, burst=1.0)
        )
        try:
            first = _request(instance, "POST", "/v1/pressure", PRESSURE)
            assert first[0] == 200
            status, body = _request(
                instance, "POST", "/v1/pressure", PRESSURE
            )
            assert status == 429 and not body["ok"]
            assert body["error"]["type"] == "ServerSaturatedError"
            assert "rate limit" in body["error"]["message"]
        finally:
            _teardown(session, instance, thread)

    def test_retry_after_header_is_present_and_positive(self):
        session, instance, thread = _spawn(
            ServeConfig(rate_limit=0.25, burst=1.0)
        )
        try:
            _request(instance, "POST", "/v1/pressure", PRESSURE)
            request = urllib.request.Request(
                f"http://127.0.0.1:{instance.port}/v1/pressure",
                data=json.dumps(PRESSURE).encode(),
                headers={"Content-Type": "application/json"},
                method="POST",
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=30)
            error = excinfo.value
            error.read()
            assert error.code == 429
            assert int(error.headers["Retry-After"]) >= 1
        finally:
            _teardown(session, instance, thread)

    def test_health_is_exempt_from_rate_limiting(self):
        session, instance, thread = _spawn(
            ServeConfig(rate_limit=0.25, burst=1.0)
        )
        try:
            _request(instance, "POST", "/v1/pressure", PRESSURE)
            for _ in range(3):
                status, body = _request(instance, "GET", "/v1/health")
                assert status == 200 and body["ok"]
        finally:
            _teardown(session, instance, thread)

    def test_inflight_gate_refuses_over_capacity(self):
        from repro.api.dispatch import InflightGate

        session, instance, thread = _spawn(ServeConfig(max_inflight=1))
        try:
            assert isinstance(instance.gate, InflightGate)
            # Hold the single slot open, then poke a request through.
            assert instance.gate.try_enter()
            status, body = _request(
                instance, "POST", "/v1/pressure", PRESSURE
            )
            assert status == 429
            assert "capacity" in body["error"]["message"]
            instance.gate.exit()
            status, _ = _request(instance, "POST", "/v1/pressure", PRESSURE)
            assert status == 200
        finally:
            _teardown(session, instance, thread)


class TestStreaming:
    def test_stream_emits_points_then_result(self, server):
        request = urllib.request.Request(
            f"http://127.0.0.1:{server.port}/v1/sweep?stream=1",
            data=json.dumps({"name": "rf-size", "n_loops": 3}).encode(),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with urllib.request.urlopen(request, timeout=120) as response:
            assert response.status == 200
            assert "ndjson" in response.headers["Content-Type"]
            events = [json.loads(line) for line in response if line.strip()]
        assert all(e["ok"] for e in events)
        kinds = [e["event"] for e in events]
        assert kinds[-1] == "result"
        points = [e for e in events if e["event"] == "point"]
        assert len(points) == events[-1]["response"]["points"]
        assert {p["index"] for p in points} == set(range(len(points)))
        assert all(p["total"] == len(points) for p in points)
        # The trailing result is exactly the non-streaming payload.
        status, plain = _request(
            server, "POST", "/v1/sweep", {"name": "rf-size", "n_loops": 3}
        )
        assert status == 200
        streamed = dict(events[-1]["response"])
        expected = dict(plain["result"])
        for volatile in ("elapsed", "cache_hits", "cache_misses", "text"):
            streamed.pop(volatile), expected.pop(volatile)
        assert streamed == expected

    def test_stream_request_validation_still_an_http_error(self, server):
        status, body = _request(
            server, "POST", "/v1/sweep?stream=1", {"name": "no-such-sweep"}
        )
        assert status == 400 and not body["ok"]

    def test_stream_flag_off_is_plain_response(self, server):
        status, body = _request(
            server, "POST", "/v1/sweep?stream=0",
            {"name": "rf-size", "n_loops": 3},
        )
        assert status == 200 and body["ok"]
        assert body["result"]["points"] > 0


class TestHealthDetails:
    def test_health_reports_worker_pool_and_disk_cache(self, tmp_path):
        from repro.engine.cache import ResultCache
        from repro.engine.pool import Engine

        session = Session(
            engine=Engine(cache=ResultCache(directory=tmp_path / "cache"))
        )
        config = ServeConfig(workers=0, max_inflight=7, cache_dir="x")
        instance = ReproServer(("127.0.0.1", 0), session, config=config)
        thread = threading.Thread(
            target=instance.serve_forever, daemon=True
        )
        thread.start()
        try:
            _request(instance, "POST", "/v1/evaluate", EVALUATE)
            status, body = _request(instance, "GET", "/v1/health")
            assert status == 200
            result = body["result"]
            assert result["worker"]["index"] == 0
            assert result["worker"]["pid"] > 0
            assert result["worker"]["inflight"] >= 0
            assert result["pool"]["max_inflight"] == 7
            assert result["pool"]["shards"] == 0
            assert result["disk_cache"]["entries"] >= 1
            assert result["disk_cache"]["bytes"] > 0
        finally:
            _teardown(session, instance, thread)


class TestShutdown:
    def test_shutdown_endpoint_stops_the_loop(self):
        session = Session()
        instance = ReproServer(("127.0.0.1", 0), session)
        thread = threading.Thread(
            target=instance.serve_forever, daemon=True
        )
        thread.start()
        try:
            status, body = _request(instance, "POST", "/v1/shutdown", {})
            assert status == 200
            assert body["result"]["status"] == "shutting down"
            thread.join(timeout=10)
            assert not thread.is_alive(), "serve loop still running"
        finally:
            instance.server_close()
            session.close()
