"""The serve front-end: routes, envelopes, shared cache, shutdown."""

import json
import threading
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.api import API_SCHEMA_VERSION, Session
from repro.api.serve import MAX_BODY_BYTES, ReproServer


@pytest.fixture()
def server():
    session = Session()
    instance = ReproServer(("127.0.0.1", 0), session)
    thread = threading.Thread(target=instance.serve_forever, daemon=True)
    thread.start()
    yield instance
    instance.shutdown()
    thread.join(timeout=10)
    instance.server_close()
    session.close()


def _request(server, method, path, body=None, raw=None):
    """Returns ``(status, decoded_envelope)`` without raising on 4xx/5xx."""
    data = raw
    if body is not None:
        data = json.dumps(body).encode("utf-8")
    request = urllib.request.Request(
        f"http://127.0.0.1:{server.port}{path}",
        data=data,
        headers={"Content-Type": "application/json"},
        method=method,
    )
    try:
        with urllib.request.urlopen(request, timeout=60) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


PRESSURE = {"loop": {"kind": "kernel", "name": "daxpy"}}
EVALUATE = {
    "loop": {"kind": "kernel", "name": "hydro_fragment"},
    "model": "swapped",
    "register_budget": 16,
}


class TestRoutes:
    def test_health_reports_serving_and_counters(self, server):
        status, body = _request(server, "GET", "/v1/health")
        assert status == 200 and body["ok"]
        assert body["result"]["status"] == "serving"
        assert body["result"]["schema_version"] == API_SCHEMA_VERSION
        assert "cache" in body["result"]

    def test_discovery_endpoints(self, server):
        status, body = _request(server, "GET", "/v1/experiments")
        assert status == 200
        assert {e["name"] for e in body["result"]} >= {"figure6", "suite"}
        status, body = _request(server, "GET", "/v1/capabilities")
        assert status == 200
        assert "spill_policies" in body["result"]

    def test_pressure_round_trip(self, server):
        status, body = _request(server, "POST", "/v1/pressure", PRESSURE)
        assert status == 200 and body["ok"]
        result = body["result"]
        assert result["type"] == "pressure.response"
        assert result["unified"] >= result["partitioned"] >= 1

    def test_experiment_endpoint(self, server):
        status, body = _request(
            server, "POST", "/v1/experiment",
            {"name": "cost", "params": {"registers": 32}},
        )
        assert status == 200
        assert "organization" in body["result"]["text"]

    def test_sweep_endpoint(self, server):
        status, body = _request(
            server, "POST", "/v1/sweep", {"name": "rf-size", "n_loops": 3}
        )
        assert status == 200
        assert body["result"]["points"] > 0
        assert len(body["result"]["headers"]) == len(
            body["result"]["rows"][0]
        )


class TestErrorEnvelopes:
    def test_unknown_route_is_404_envelope(self, server):
        status, body = _request(server, "POST", "/v1/teleport", {})
        assert status == 404 and not body["ok"]
        assert body["error"]["type"] == "NotFound"
        status, body = _request(server, "GET", "/v1/teleport")
        assert status == 404 and not body["ok"]

    def test_unknown_schema_version_is_400(self, server):
        payload = dict(PRESSURE, schema_version=99)
        status, body = _request(server, "POST", "/v1/pressure", payload)
        assert status == 400
        assert body["error"]["type"] == "SchemaVersionError"
        assert "99" in body["error"]["message"]

    def test_validation_error_is_400(self, server):
        payload = dict(EVALUATE, register_budget=0)
        status, body = _request(server, "POST", "/v1/evaluate", payload)
        assert status == 400
        assert body["error"]["type"] == "RequestValidationError"

    def test_unknown_experiment_is_404(self, server):
        status, body = _request(
            server, "POST", "/v1/experiment", {"name": "figure0"}
        )
        assert status == 404
        assert body["error"]["type"] == "UnknownExperimentError"

    def test_malformed_json_is_400_not_a_trace(self, server):
        status, body = _request(
            server, "POST", "/v1/pressure", raw=b"{not json"
        )
        assert status == 400
        assert "not JSON" in body["error"]["message"]

    def test_non_object_body_is_400(self, server):
        status, body = _request(server, "POST", "/v1/pressure", body=[1, 2])
        assert status == 400

    def test_report_out_dir_rejected_over_the_wire(self, server):
        """A network peer must not write files with server privileges."""
        status, body = _request(
            server, "POST", "/v1/report",
            {"n_loops": 1, "out_dir": "/tmp/owned"},
        )
        assert status == 400
        assert "out_dir" in body["error"]["message"]
        assert "include_text" in body["error"]["message"]

    def test_negative_content_length_is_400_not_a_hang(self, server):
        import socket

        with socket.create_connection(
            ("127.0.0.1", server.port), timeout=10
        ) as sock:
            sock.sendall(
                b"POST /v1/pressure HTTP/1.1\r\n"
                b"Host: localhost\r\n"
                b"Content-Length: -1\r\n"
                b"\r\n"
            )
            head = sock.recv(64)
        assert b"400" in head.split(b"\r\n", 1)[0]

    def test_oversized_body_is_400(self, server):
        status, body = _request(
            server,
            "POST",
            "/v1/pressure",
            raw=b" " * (MAX_BODY_BYTES + 1),
        )
        assert status == 400
        assert "exceeds" in body["error"]["message"]


class TestSharedCache:
    def test_second_identical_request_is_a_cache_hit(self, server):
        _, first = _request(server, "POST", "/v1/evaluate", EVALUATE)
        _, second = _request(server, "POST", "/v1/evaluate", EVALUATE)
        assert first["result"]["cached"] is False
        assert second["result"]["cached"] is True
        assert first["result"]["ii"] == second["result"]["ii"]

    def test_concurrent_clients_share_one_cache(self, server):
        """Two clients hammering identical points: one set of evaluations."""
        def client(_):
            return [
                _request(server, "POST", "/v1/evaluate", EVALUATE)[1][
                    "result"
                ]
                for _ in range(3)
            ]

        with ThreadPoolExecutor(max_workers=2) as pool:
            streams = list(pool.map(client, range(2)))
        results = [r for stream in streams for r in stream]
        assert len({r["ii"] for r in results}) == 1
        # 6 requests for one point: exactly one computed it.
        assert sum(not r["cached"] for r in results) == 1
        _, health = _request(server, "GET", "/v1/health")
        assert health["result"]["cache"]["hits"] >= 5
        assert health["result"]["requests_served"] >= 6


class TestShutdown:
    def test_shutdown_endpoint_stops_the_loop(self):
        session = Session()
        instance = ReproServer(("127.0.0.1", 0), session)
        thread = threading.Thread(
            target=instance.serve_forever, daemon=True
        )
        thread.start()
        try:
            status, body = _request(instance, "POST", "/v1/shutdown", {})
            assert status == 200
            assert body["result"]["status"] == "shutting down"
            thread.join(timeout=10)
            assert not thread.is_alive(), "serve loop still running"
        finally:
            instance.server_close()
            session.close()
