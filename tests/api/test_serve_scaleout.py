"""Scale-out serve, end to end: real subprocesses, one shared cache.

These tests spawn ``python -m repro serve --workers 2`` the way an
operator would and exercise the supervisor protocol (heartbeats, crash
respawn, graceful shutdown) and the shared-cache semantics across shard
processes.  They are the integration layer over the unit tests in
``test_dispatch.py`` / ``test_cache_concurrency.py``.
"""

import os
import signal
import time

import pytest

from repro.api.loadtest import (
    LoadStats,
    ServerProcess,
    build_workload,
    percentile,
    run_load,
)

EVALUATE = {
    "loop": {"kind": "kernel", "name": "daxpy"},
    "model": "unified",
    "register_budget": 16,
}


@pytest.fixture(scope="module")
def cluster():
    """One 2-shard server for the whole module (startup costs ~1s)."""
    with ServerProcess(workers=2) as server:
        yield server


class TestScaleOutServing:
    def test_health_reports_every_live_worker(self, cluster):
        status, body = cluster.request("health")
        assert status == 200 and body["ok"]
        result = body["result"]
        assert result["pool"]["shards"] == 2
        assert result["pool"]["coalesce"] is True
        workers = {w["index"]: w for w in result["workers"]}
        assert set(workers) == {0, 1}
        assert all(w["alive"] for w in workers.values())
        assert len({w["pid"] for w in workers.values()}) == 2

    def test_result_computed_by_one_shard_is_cached_for_all(self, cluster):
        body = dict(EVALUATE, register_budget=24)
        first = cluster.request("evaluate", body)[1]["result"]
        # Every subsequent request must be a hit no matter which shard
        # accepts the connection: the disk cache is the shared tier.
        laters = [
            cluster.request("evaluate", body)[1]["result"] for _ in range(6)
        ]
        assert sum(not r["cached"] for r in [first] + laters) <= 1
        assert {r["ii"] for r in [first] + laters} == {first["ii"]}

    def test_load_run_is_error_free_and_complete(self, cluster):
        bodies = build_workload("cold", 4)
        stats = run_load(cluster.url, bodies, clients=8)
        assert stats.errors == 0, stats.error_samples
        assert stats.requests == len(bodies)
        assert stats.p99_ms > 0

    def test_crashed_shard_is_respawned(self, cluster):
        workers = cluster.request("health")[1]["result"]["workers"]
        victim = workers[0]["pid"]
        os.kill(victim, signal.SIGKILL)
        deadline = time.monotonic() + 15
        revived = None
        while time.monotonic() < deadline:
            time.sleep(0.3)
            try:
                current = cluster.request("health")[1]["result"]["workers"]
            except OSError:
                continue
            alive = [w for w in current if w["alive"]]
            if len(alive) == 2 and victim not in {w["pid"] for w in alive}:
                revived = alive
                break
        assert revived is not None, "killed shard was not respawned"


class TestShutdownProtocol:
    def test_wire_shutdown_winds_down_every_process(self):
        with ServerProcess(workers=2) as server:
            pid = server.process.pid
            assert server.request("evaluate", EVALUATE)[0] == 200
            assert server.shutdown() is True
            assert server.process.returncode == 0
        # The process group is really gone (no orphaned shards).
        with pytest.raises(OSError):
            os.kill(pid, 0)

    def test_sigterm_is_a_clean_exit(self):
        with ServerProcess(workers=2) as server:
            server.process.terminate()
            server.process.wait(timeout=30)
            assert server.process.returncode == 0
            server.clean_exit = True  # prevent double-shutdown on exit


class TestLoadHarness:
    def test_workload_shapes_and_determinism(self):
        cold = build_workload("cold", 3)
        assert len(cold) == 3 * 7  # ideal + 2 budgets x 3 models
        assert len({id(b) for b in cold}) == len(cold)
        mixed_a = build_workload("mixed", 3)
        mixed_b = build_workload("mixed", 3)
        assert mixed_a == mixed_b  # seeded shuffle: same order every time
        assert len(mixed_a) == 2 * len(cold)
        warm = build_workload("warm", 3)
        assert warm == cold

    def test_workload_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            build_workload("hot", 3)

    def test_percentile_nearest_rank(self):
        values = [float(v) for v in range(1, 101)]
        assert percentile(values, 50) == pytest.approx(50.0, abs=1.0)
        assert percentile(values, 99) == pytest.approx(99.0, abs=1.0)
        assert percentile([], 99) == 0.0
        assert percentile([7.0], 0) == 7.0

    def test_load_stats_shapes(self):
        stats = LoadStats(
            requests=10, elapsed=2.0, latencies=[0.1] * 9 + [0.5]
        )
        assert stats.points_per_sec == 5.0
        assert stats.p50_ms == pytest.approx(100.0)
        assert stats.p99_ms == pytest.approx(500.0)
        payload = stats.as_dict()
        assert payload["points_per_sec"] == 5.0
        assert payload["p99_ms"] == 500.0

    def test_rate_limited_server_throttles_then_serves_all(self):
        """429s are honored (Retry-After) and every body still lands."""
        with ServerProcess(
            workers=0, rate_limit=30.0, extra_args=("--burst", "2")
        ) as server:
            bodies = build_workload("cold", 1)
            stats = run_load(server.url, bodies, clients=4)
            assert server.shutdown() is True
        assert stats.errors == 0, stats.error_samples
        assert stats.requests == len(bodies)
        assert stats.throttled > 0
