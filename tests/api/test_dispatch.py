"""Admission control and the coalescing dispatcher."""

import threading

import pytest

from repro.api import Session
from repro.api.dispatch import BatchDispatcher, InflightGate, TokenBucket
from repro.api.types import ServerSaturatedError
from repro.engine.jobs import pressure_job
from repro.machine.config import paper_config
from repro.workloads.kernels import kernel_names, make_kernel


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestTokenBucket:
    def test_burst_then_refusal_with_wait_time(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=3.0, clock=clock)
        assert [bucket.try_acquire() for _ in range(3)] == [0.0, 0.0, 0.0]
        wait = bucket.try_acquire()
        assert wait == pytest.approx(0.5)  # 1 token at 2/s

    def test_refill_restores_admission(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=1.0, clock=clock)
        assert bucket.try_acquire() == 0.0
        assert bucket.try_acquire() > 0.0
        clock.advance(0.5)
        assert bucket.try_acquire() == 0.0

    def test_tokens_cap_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=100.0, burst=2.0, clock=clock)
        clock.advance(3600)
        assert bucket.try_acquire() == 0.0
        assert bucket.try_acquire() == 0.0
        assert bucket.try_acquire() > 0.0

    def test_zero_rate_disables_limiting(self):
        bucket = TokenBucket(rate=0.0)
        assert all(bucket.try_acquire() == 0.0 for _ in range(1000))

    def test_sub_one_burst_rejected(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0.5)

    def test_default_burst_tracks_rate(self):
        assert TokenBucket(rate=8.0).burst == 8.0
        assert TokenBucket(rate=0.25).burst == 1.0


class TestInflightGate:
    def test_admits_to_limit_then_refuses(self):
        gate = InflightGate(2)
        assert gate.try_enter() and gate.try_enter()
        assert not gate.try_enter()
        assert gate.depth == 2
        gate.exit()
        assert gate.try_enter()

    def test_context_manager_raises_429_error(self):
        gate = InflightGate(1, retry_after=2.5)
        with gate:
            with pytest.raises(ServerSaturatedError) as excinfo:
                with gate:
                    pass
            assert excinfo.value.status == 429
            assert excinfo.value.retry_after == 2.5
        assert gate.depth == 0

    def test_exit_on_exception_path(self):
        gate = InflightGate(1)
        with pytest.raises(RuntimeError):
            with gate:
                raise RuntimeError("boom")
        assert gate.depth == 0

    def test_zero_limit_disables_bound(self):
        gate = InflightGate(0)
        for _ in range(100):
            assert gate.try_enter()


class TestBatchDispatcher:
    @pytest.fixture()
    def session(self):
        with Session() as session:
            yield session

    def _jobs(self, count):
        machine = paper_config(6)
        names = list(kernel_names())
        return [
            pressure_job(make_kernel(names[i % len(names)]), machine)
            for i in range(count)
        ]

    def test_results_match_direct_execution(self, session):
        dispatcher = BatchDispatcher(session)
        try:
            jobs = self._jobs(3)
            direct = session.engine.map(jobs)
            got = [dispatcher.submit(job) for job in jobs]
            # Second submission of each job is a cache hit by provenance.
            assert [r for r, _cached in got[: len(jobs)]] == direct
            assert all(cached for _r, cached in got)
        finally:
            dispatcher.close()

    def test_concurrent_submits_coalesce_into_fewer_batches(self, session):
        dispatcher = BatchDispatcher(session, linger=0.05)
        try:
            jobs = self._jobs(8)
            results = [None] * len(jobs)

            def submit(i):
                results[i] = dispatcher.submit(jobs[i])

            threads = [
                threading.Thread(target=submit, args=(i,))
                for i in range(len(jobs))
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)
            assert all(r is not None for r in results)
            assert dispatcher.jobs_batched == len(jobs)
            assert dispatcher.batches_run < len(jobs)
        finally:
            dispatcher.close()

    def test_session_routes_through_dispatcher(self, session):
        from repro.api.types import PressureRequest, LoopSpec

        dispatcher = BatchDispatcher(session)
        session.dispatcher = dispatcher
        response = session.pressure(
            PressureRequest(loop=LoopSpec(kind="kernel", name="daxpy"))
        )
        assert response.cached is False
        again = session.pressure(
            PressureRequest(loop=LoopSpec(kind="kernel", name="daxpy"))
        )
        assert again.cached is True
        assert again.unified == response.unified
        assert dispatcher.jobs_batched >= 2
        session.close()  # must close the dispatcher too
        assert session.dispatcher is None

    def test_engine_failure_reaches_every_submitter(self, session):
        dispatcher = BatchDispatcher(session)
        try:
            with pytest.raises(Exception):
                dispatcher.submit(object())  # not an EvalJob: engine chokes
        finally:
            dispatcher.close()

    def test_submit_after_close_is_an_error(self, session):
        dispatcher = BatchDispatcher(session)
        dispatcher.close()
        with pytest.raises(RuntimeError):
            dispatcher.submit(self._jobs(1)[0])

    def test_knob_validation(self, session):
        with pytest.raises(ValueError):
            BatchDispatcher(session, linger=-0.1)
        with pytest.raises(ValueError):
            BatchDispatcher(session, max_batch=0)
