"""Unit tests for the functional register-file model."""

import pytest

from repro.regalloc.firstfit import PlacedLifetime
from repro.regalloc.lifetimes import Lifetime
from repro.sim.regfile import RegisterFile, RegisterFileError


def _file(registers=4, ii=1, placements=None):
    placements = placements or {
        0: PlacedLifetime(Lifetime(0, 0, 2), 0, ii),
        1: PlacedLifetime(Lifetime(1, 0, 2), 2, ii),
    }
    return RegisterFile("test", registers, placements, ii)


class TestReadWrite:
    def test_roundtrip(self):
        rf = _file()
        rf.write(0, 0, 1.5, time=0)
        assert rf.read(0, 0, time=1) == 1.5
        assert rf.reads == 1 and rf.writes == 1

    def test_rotation_across_iterations(self):
        rf = _file()
        for k in range(6):
            rf.write(0, k, float(k), time=k)
        # Distinct iterations map to distinct cells modulo the file size.
        regs = {rf.physical_register(0, k) for k in range(4)}
        assert len(regs) == 4

    def test_overwrite_detected_on_read(self):
        rf = _file(registers=1, placements={
            0: PlacedLifetime(Lifetime(0, 0, 2), 0, 1),
        })
        rf.write(0, 0, 1.0, time=0)
        rf.write(0, 1, 2.0, time=1)  # same cell (file size 1)
        with pytest.raises(RegisterFileError, match="overwritten"):
            rf.read(0, 0, time=2)

    def test_read_before_write_detected(self):
        rf = _file()
        rf.write(0, 0, 1.0, time=5)
        with pytest.raises(RegisterFileError, match="before write"):
            rf.read(0, 0, time=3)

    def test_unallocated_value_rejected(self):
        rf = _file()
        with pytest.raises(RegisterFileError):
            rf.write(9, 0, 1.0, time=0)
        with pytest.raises(RegisterFileError):
            rf.read(9, 0, time=0)

    def test_holds(self):
        rf = _file()
        assert rf.holds(0) and rf.holds(1)
        assert not rf.holds(5)


class TestPhysicalMapping:
    def test_shift_offsets_register(self):
        rf = _file()
        assert rf.physical_register(0, 0) == 0
        assert rf.physical_register(1, 2) == 0  # (2 - 2) mod 4

    def test_negative_unwrapped_register_wraps(self):
        rf = _file()
        assert rf.physical_register(1, 0) == (0 - 2) % 4

    def test_invalid_register_count(self):
        with pytest.raises(ValueError):
            RegisterFile("bad", -1, {}, 1)
