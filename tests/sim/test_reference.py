"""Unit tests for the reference interpreter."""

import pytest

from repro.ir.builder import LoopBuilder
from repro.ir.operation import Operation, OpType
from repro.sim.reference import (
    ReferenceInterpreter,
    apply_op,
    array_value,
    initial_value,
    invariant_value,
)
from repro.spill.spiller import spill_value
from repro.workloads.kernels import example_loop


class TestDeterministicValues:
    def test_array_values_reproducible(self):
        assert array_value("x", 3) == array_value("x", 3)
        assert array_value("x", 3) != array_value("x", 4)
        assert array_value("x", 3) != array_value("y", 3)

    def test_values_in_unit_range(self):
        for i in range(20):
            assert 1.0 <= array_value("x", i) < 2.0
            assert 1.0 <= initial_value(3, -i - 1) < 2.0
        assert 1.0 <= invariant_value("r") < 2.0


class TestApplyOp:
    def _op(self, optype):
        return Operation(0, "t", optype)

    def test_arithmetic(self):
        assert apply_op(self._op(OpType.FADD), [2.0, 3.0]) == 5.0
        assert apply_op(self._op(OpType.FSUB), [2.0, 3.0]) == -1.0
        assert apply_op(self._op(OpType.FMUL), [2.0, 3.0]) == 6.0
        assert apply_op(self._op(OpType.FDIV), [6.0, 3.0]) == 2.0
        assert apply_op(self._op(OpType.FNEG), [2.0]) == -2.0
        assert apply_op(self._op(OpType.FCONV), [2.5]) == 2.5

    def test_divide_by_zero_guard(self):
        assert apply_op(self._op(OpType.FDIV), [5.0, 0.0]) == 5.0

    def test_load_has_no_arithmetic(self):
        with pytest.raises(ValueError):
            apply_op(self._op(OpType.LOAD), [])


class TestInterpretation:
    def test_example_loop_semantics(self):
        graph = example_loop().graph
        named = {op.name: op.op_id for op in graph.operations}
        ref = ReferenceInterpreter(graph)
        k = 5
        l1 = array_value("x", k)
        l2 = array_value("y", k)
        r = invariant_value("r")
        t = invariant_value("t")
        expected = l1 + t * (r * l1 + l2)
        assert ref.value(named["A6"], k) == pytest.approx(expected)

    def test_negative_iteration_gives_initial_values(self):
        graph = example_loop().graph
        ref = ReferenceInterpreter(graph)
        v = ref.value(0, -1)
        assert v == initial_value(0, -1)

    def test_reduction_accumulates(self):
        b = LoopBuilder()
        acc = b.placeholder()
        s = b.add(acc, b.load("x"), name="s")
        b.bind(acc, s, distance=1)
        graph = b.build().graph
        ref = ReferenceInterpreter(graph)
        expected = initial_value(s.op_id, -1)
        for k in range(4):
            expected += array_value("x", k)
        assert ref.value(s.op_id, 3) == pytest.approx(expected)

    def test_reload_returns_stored_value(self):
        graph = example_loop().graph
        named = {op.name: op.op_id for op in graph.operations}
        spilled = spill_value(graph, named["M3"])
        ref = ReferenceInterpreter(spilled)
        reload_op = next(
            op
            for op in spilled.operations
            if op.is_spill and op.optype is OpType.LOAD
        )
        assert ref.value(reload_op.op_id, 4) == ref.value(named["M3"], 4)

    def test_memoization_consistency(self):
        graph = example_loop().graph
        ref = ReferenceInterpreter(graph)
        assert ref.value(4, 7) == ref.value(4, 7)
