"""Simulator edge cases the differential gate leans on.

Prologue live-ins (reads of iterations that never executed), the zero-
divisor rule shared by the reference interpreter and the executor, and
the port/bus accounting on empty and single-op schedules.
"""

from __future__ import annotations

import pytest

from repro.ir.ddg import DependenceGraph
from repro.ir.operation import Immediate, Operation, OpType, ValueRef
from repro.machine.config import paper_config
from repro.regalloc.allocation import allocate_unified
from repro.sched.modulo import modulo_schedule
from repro.sim.executor import PortStats, SimulationReport, execute_kernel
from repro.sim.reference import ReferenceInterpreter, apply_op


@pytest.fixture(scope="module")
def machine():
    return paper_config(6)


def _execute(graph, machine, iterations):
    schedule = modulo_schedule(graph, machine)
    allocation = allocate_unified(schedule)
    return execute_kernel(schedule, allocation, iterations=iterations)


class TestPrologueLiveIns:
    def test_distance_two_recurrence(self, machine):
        """A value consumed at distance 2: iterations 0 and 1 read values
        from ``iteration - 2 < 0``, which never executed.  The executor
        must take those live-ins from the reference instead of checking a
        register that was never written -- and still check every read
        whose producing iteration did run."""
        graph = DependenceGraph("prologue")
        load = graph.add_operation(OpType.LOAD, symbol="arr0")
        acc = graph.add_operation(
            OpType.FADD, (ValueRef(load.op_id, 0), Immediate(1.0))
        )
        graph.set_operands(
            acc.op_id,
            [ValueRef(load.op_id, 0), ValueRef(acc.op_id, 2)],
        )
        graph.add_operation(
            OpType.STORE, (ValueRef(acc.op_id, 0),), symbol="out"
        )

        report = _execute(graph, machine, iterations=5)
        # Per iteration: acc reads load (5 checked) and itself at distance
        # 2 (3 checked, 2 prologue live-ins), the store reads acc (5).
        assert report.reads_checked == 5 + 3 + 5
        assert report.iterations == 5

    def test_distance_beyond_iteration_count(self, machine):
        """Distance larger than the iteration count: *every* loop-carried
        read is a prologue live-in, none are checked."""
        graph = DependenceGraph("all-prologue")
        load = graph.add_operation(OpType.LOAD, symbol="arr0")
        acc = graph.add_operation(
            OpType.FADD, (ValueRef(load.op_id, 0), Immediate(1.0))
        )
        graph.set_operands(
            acc.op_id,
            [ValueRef(load.op_id, 0), ValueRef(acc.op_id, 3)],
        )
        graph.add_operation(
            OpType.STORE, (ValueRef(acc.op_id, 0),), symbol="out"
        )
        report = _execute(graph, machine, iterations=2)
        assert report.reads_checked == 2 + 0 + 2


class TestZeroDivisor:
    def test_apply_op_treats_zero_divisor_as_one(self):
        fdiv = Operation(
            0, "div", OpType.FDIV, (Immediate(3.0), Immediate(0.0))
        )
        assert apply_op(fdiv, [3.0, 0.0]) == 3.0

    def test_reference_matches_executor_rule(self, machine):
        """A kernel dividing by a constant 0.0 executes cleanly: the
        reference and the executor share the divisor-as-1.0 rule, so the
        dataflow check cannot diverge on it."""
        graph = DependenceGraph("zdiv")
        load = graph.add_operation(OpType.LOAD, symbol="arr0")
        div = graph.add_operation(
            OpType.FDIV, (ValueRef(load.op_id, 0), Immediate(0.0))
        )
        graph.add_operation(
            OpType.STORE, (ValueRef(div.op_id, 0),), symbol="out"
        )
        report = _execute(graph, machine, iterations=4)
        assert report.reads_checked == 8
        interp = ReferenceInterpreter(graph)
        assert interp.value(div.op_id, 0) == interp.value(load.op_id, 0)


class TestAccountingEdges:
    def test_empty_port_stats(self):
        stats = PortStats()
        assert stats.max_reads == 0
        assert stats.max_writes == 0

    def test_empty_report(self):
        report = SimulationReport(
            iterations=0,
            cycles=0,
            reads_checked=0,
            values_written=0,
            memory_accesses=0,
            bus_per_cycle={},
            port_stats={},
        )
        assert report.bus_peak == 0
        assert report.average_bus_usage(2) == 0.0
        assert report.occupancy == {}
        assert report.registers_claimed == {}

    def test_single_op_schedule(self, machine):
        """One store of an immediate: memory traffic with no register
        traffic.  The bus sees exactly one access per iteration; the file
        never holds a value, so occupancy stays at zero."""
        graph = DependenceGraph("single")
        graph.add_operation(OpType.STORE, (Immediate(2.5),), symbol="out")
        report = _execute(graph, machine, iterations=6)
        assert report.memory_accesses == report.iterations == 6
        assert report.reads_checked == 0
        assert report.values_written == 0
        assert 1 <= report.bus_peak <= machine.memory_bandwidth
        occupancy = report.occupancy["unified"]
        assert occupancy.peak == 0
        assert occupancy.touched == 0
        assert occupancy.instances == 0
        assert report.average_bus_usage(machine.memory_bandwidth) == (
            6 / (report.cycles * machine.memory_bandwidth)
        )
