"""Integration tests: cycle-level execution of scheduled, allocated loops."""

import pytest

from repro.core.dualfile import allocate_dual
from repro.core.models import Model
from repro.core.swapping import greedy_swap
from repro.regalloc.allocation import allocate_unified
from repro.regalloc.firstfit import PlacedLifetime
from repro.sched.modulo import modulo_schedule
from repro.sim.executor import SimulationError, execute_kernel
from repro.sim.regfile import RegisterFileError
from repro.spill.spiller import evaluate_loop
from repro.workloads.kernels import all_kernels, example_loop, make_kernel


class TestUnifiedExecution:
    def test_example_loop(self, example_schedule):
        report = execute_kernel(
            example_schedule, allocate_unified(example_schedule), iterations=25
        )
        assert report.reads_checked > 0
        assert report.values_written == 25 * 6
        assert report.memory_accesses == 25 * 3

    def test_all_kernels_verify(self, paper_l3):
        for loop in all_kernels():
            schedule = modulo_schedule(loop.graph, paper_l3)
            execute_kernel(schedule, allocate_unified(schedule), iterations=6)

    def test_corrupted_allocation_detected(self, example_schedule):
        """Forcing two overlapping values onto the same registers must trip
        the register-file ownership check."""
        import dataclasses

        from repro.regalloc.lifetimes import Lifetime

        alloc = allocate_unified(example_schedule)
        placements = dict(alloc.result.placements)
        a, b = sorted(placements)[:2]  # L1 and L2: overlapping lifetimes
        placements[b] = PlacedLifetime(
            Lifetime(b, placements[a].lifetime.start, placements[a].lifetime.end),
            placements[a].shift,
            alloc.ii,
        )
        broken = dataclasses.replace(
            alloc,
            result=dataclasses.replace(alloc.result, placements=placements),
        )
        with pytest.raises((RegisterFileError, SimulationError)):
            execute_kernel(example_schedule, broken, iterations=25)


class TestDualExecution:
    def test_partitioned_example(self, example_schedule):
        report = execute_kernel(
            example_schedule, allocate_dual(example_schedule), iterations=25
        )
        assert set(report.port_stats) == {"subfile0", "subfile1"}

    def test_swapped_example(self, example_schedule):
        swap = greedy_swap(example_schedule)
        alloc = allocate_dual(swap.schedule, swap.assignment)
        execute_kernel(swap.schedule, alloc, iterations=25)

    @pytest.mark.parametrize("latency", [3, 6])
    def test_kernels_dual(self, latency):
        from repro.machine.config import paper_config

        machine = paper_config(latency)
        for loop in all_kernels()[:12]:
            schedule = modulo_schedule(loop.graph, machine)
            execute_kernel(schedule, allocate_dual(schedule), iterations=5)

    def test_port_pressure_bounded_by_cluster_width(self, example_schedule):
        """Each cluster (1 add + 1 mul + 2 ld/st) can read at most 5 operands
        per cycle; the simulator must agree."""
        report = execute_kernel(
            example_schedule, allocate_dual(example_schedule), iterations=25
        )
        for stats in report.port_stats.values():
            assert stats.max_reads <= 5


class TestSpilledExecution:
    @pytest.mark.parametrize("budget", [10, 16])
    def test_spilled_unified_executes(self, paper_l6, budget):
        ev = evaluate_loop(
            example_loop(), paper_l6, Model.UNIFIED, register_budget=budget
        )
        assert ev.requirement.unified is not None
        execute_kernel(ev.schedule, ev.requirement.unified, iterations=12)

    def test_spilled_dual_executes(self, paper_l6):
        ev = evaluate_loop(
            make_kernel("state_equation"),
            paper_l6,
            Model.PARTITIONED,
            register_budget=12,
        )
        assert ev.requirement.dual is not None
        execute_kernel(ev.schedule, ev.requirement.dual, iterations=12)

    def test_reduction_spill_executes(self, paper_l6):
        ev = evaluate_loop(
            make_kernel("iccg"), paper_l6, Model.UNIFIED, register_budget=8
        )
        alloc = ev.requirement.unified
        execute_kernel(ev.schedule, alloc, iterations=12)


class TestTrafficCrossCheck:
    def test_empirical_density_matches_analytic(self, paper_l3):
        ev = evaluate_loop(example_loop(), paper_l3, Model.UNIFIED)
        report = execute_kernel(
            ev.schedule, ev.requirement.unified, iterations=50
        )
        assert report.average_bus_usage(
            paper_l3.memory_bandwidth
        ) == pytest.approx(ev.traffic_density)
