"""Lowering correctness: flat arrays mirror the dict-world accessors."""

from __future__ import annotations

from repro import kernel
from repro.ir.builder import LoopBuilder
from repro.machine.config import example_config, paper_config
from repro.workloads.synthetic import generate_loop


def _sample_loop():
    return generate_loop(3)


class TestMachineArrays:
    def test_pools_and_masks(self):
        machine = paper_config(6)
        ma = kernel.lower_machine(machine)
        assert ma.names == tuple(p.name for p in machine.pools)
        for i, name in enumerate(ma.names):
            assert ma.counts[i] == machine.units(name)
            assert ma.full_masks[i] == (1 << machine.units(name)) - 1
            assert ma.cluster_of[i] == tuple(
                machine.cluster_of_instance(name, k)
                for k in range(machine.units(name))
            )
        assert ma.n_clusters == machine.n_clusters

    def test_lowering_is_memoized(self):
        machine = example_config()
        assert kernel.lower_machine(machine) is kernel.lower_machine(machine)


class TestLoopArrays:
    def test_ids_pools_latencies(self):
        loop = _sample_loop()
        machine = paper_config(3)
        la = kernel.lower_loop(loop.graph, machine)
        ops = loop.graph.operations
        assert la.n == len(ops)
        assert la.ids == [op.op_id for op in ops]
        for i, op in enumerate(ops):
            assert la.ma.names[la.pool[i]] == machine.pool_for(op)
            assert la.latency[i] == machine.latency_of(op)
            assert la.defines[i] == op.defines_value

    def test_edges_match_graph_edges(self):
        loop = _sample_loop()
        machine = paper_config(3)
        la = kernel.lower_loop(loop.graph, machine)
        from repro.sched.mii import edge_delay

        expected = [
            (
                la.index[e.src],
                la.index[e.dst],
                edge_delay(e, loop.graph, machine),
                e.distance,
            )
            for e in loop.graph.edges()
        ]
        assert expected == list(
            zip(la.e_src, la.e_dst, la.e_delay, la.e_dist)
        )

    def test_consumer_adjacency_matches_consumers(self):
        loop = _sample_loop()
        machine = paper_config(3)
        la = kernel.lower_loop(loop.graph, machine)
        for v in la.values:
            op_id = la.ids[v]
            expected = [
                (la.index[c.op_id], d)
                for c, d in loop.graph.consumers(op_id)
            ]
            assert la.cons[v] == expected

    def test_cache_hits_and_mutation_invalidation(self):
        machine = paper_config(3)
        builder = LoopBuilder("mutating")
        a = builder.load("x")
        b = builder.add(a, a)
        builder.store(b, "y")
        graph = builder._graph
        first = kernel.lower_loop(graph, machine)
        assert kernel.lower_loop(graph, machine) is first
        c = graph.add_operation  # structural mutation invalidates
        from repro.ir.operation import OpType, ValueRef

        c(OpType.FADD, (ValueRef(b.op_id, 0), ValueRef(b.op_id, 0)))
        second = kernel.lower_loop(graph, machine)
        assert second is not first
        assert second.n == first.n + 1


class TestConsumerMap:
    def test_matches_graph_consumers(self):
        loop = _sample_loop()
        cmap = kernel.consumer_map(loop.graph)
        values = [op for op in loop.graph.operations if op.defines_value]
        assert list(cmap) == [op.op_id for op in values]
        for op in values:
            expected = [
                (c.op_id, d) for c, d in loop.graph.consumers(op.op_id)
            ]
            assert cmap[op.op_id] == expected


class TestToggle:
    def test_use_kernels_restores_state(self):
        initial = kernel.kernels_enabled()
        with kernel.use_kernels(not initial):
            assert kernel.kernels_enabled() is not initial
        assert kernel.kernels_enabled() is initial

    def test_set_kernels_returns_prior(self):
        prior = kernel.set_kernels(False)
        try:
            assert kernel.kernels_enabled() is False
        finally:
            kernel.set_kernels(prior)
