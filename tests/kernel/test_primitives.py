"""Kernel primitives against their closed-form/reference counterparts."""

from __future__ import annotations

import random

from repro.kernel.firstfit import BitOccupancy, first_fit_shift
from repro.kernel.lifetimes import live_profile_spans, max_live_spans
from repro.regalloc.firstfit import IntervalSet
from repro.regalloc.firstfit import first_fit_shift as legacy_shift
from repro.regalloc.lifetimes import Lifetime
from repro.regalloc.maxlive import live_at


class TestBitOccupancy:
    def test_add_and_probe(self):
        occ = BitOccupancy()
        occ.add(3, 7)
        assert occ.hits(0, 3) == 0
        assert occ.hits(3, 4) == 0b1111
        assert occ.hits(6, 4) == 0b0001
        assert occ.hits(7, 10) == 0

    def test_negative_cells_rebias(self):
        occ = BitOccupancy()
        occ.add(-5, -2)
        occ.add(4, 6)
        assert occ.hits(-5, 3) == 0b111
        assert occ.hits(-2, 6) == 0
        assert occ.hits(2, 4) == 0b1100

    def test_shift_matches_interval_set_on_disjoint_sets(self):
        # IntervalSet's contract requires disjoint contents (first-fit only
        # ever stores non-overlapping placements), so build them disjoint.
        rng = random.Random(42)
        for _ in range(200):
            ii = rng.randint(1, 7)
            occ_bits = BitOccupancy()
            occ_set = IntervalSet()
            cursor = 0
            for _ in range(rng.randint(0, 10)):
                start = cursor + rng.randint(0, 5)
                end = start + rng.randint(1, 9)
                cursor = end
                occ_bits.add(start, end)
                occ_set.add(start, end)
            start = rng.randint(0, 30)
            lt = Lifetime(0, start, start + rng.randint(1, 10))
            assert first_fit_shift(lt.start, lt.end, ii, (occ_bits,)) == (
                legacy_shift(lt, ii, (occ_set,))
            )

    def test_full_allocations_match_legacy(self):
        from repro import kernel
        from repro.regalloc.firstfit import first_fit

        rng = random.Random(9)
        for _ in range(60):
            ii = rng.randint(1, 6)
            lts = []
            for op_id in range(rng.randint(1, 14)):
                start = rng.randint(0, 20)
                lts.append(Lifetime(op_id, start, start + rng.randint(1, 25)))
            with kernel.use_kernels(False):
                legacy = first_fit(lts, ii)
            with kernel.use_kernels(True):
                masked = first_fit(lts, ii)
            assert legacy.placements == masked.placements
            assert (
                legacy.registers_required == masked.registers_required
            )


class TestLiveProfiles:
    def test_matches_live_at_scan(self):
        rng = random.Random(7)
        for _ in range(200):
            ii = rng.randint(1, 9)
            spans = []
            for _ in range(rng.randint(0, 10)):
                start = rng.randint(0, 25)
                spans.append((start, start + rng.randint(1, 30)))
            lts = [Lifetime(i, s, e) for i, (s, e) in enumerate(spans)]
            reference = [
                sum(live_at(lt, c, ii) for lt in lts) for c in range(ii)
            ]
            assert live_profile_spans(spans, ii) == reference
            assert max_live_spans(spans, ii) == (
                max(reference) if spans else 0
            )

    def test_empty(self):
        assert live_profile_spans([], 4) == [0, 0, 0, 0]
        assert max_live_spans([], 4) == 0

    def test_wrapping_remainder(self):
        # Length 3 at II=2: one whole copy everywhere plus a wrapped cycle.
        assert live_profile_spans([(0, 3)], 2) == [2, 1]
        assert live_profile_spans([(1, 4)], 2) == [1, 2]
