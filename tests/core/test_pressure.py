"""Unit tests for pressure reports (Figure 6/7 building block)."""

from repro.core.models import Model
from repro.core.pressure import pressure_report
from repro.machine.config import example_config
from repro.workloads.kernels import example_loop, make_kernel


class TestPressureReport:
    def test_example_triple(self):
        report = pressure_report(example_loop(), example_config())
        assert (report.unified, report.partitioned, report.swapped) == (
            42,
            29,
            23,
        )
        assert report.ii == 1
        assert report.mii == 1
        assert report.max_live == 42

    def test_requirement_lookup(self):
        report = pressure_report(example_loop(), example_config())
        assert report.requirement(Model.UNIFIED) == 42
        assert report.requirement(Model.IDEAL) == 42
        assert report.requirement(Model.PARTITIONED) == 29
        assert report.requirement(Model.SWAPPED) == 23

    def test_latency_raises_pressure(self, paper_l3, paper_l6):
        loop3 = make_kernel("state_equation")
        loop6 = make_kernel("state_equation")
        r3 = pressure_report(loop3, paper_l3)
        r6 = pressure_report(loop6, paper_l6)
        assert r6.unified > r3.unified

    def test_ii_at_least_mii(self, paper_l6):
        report = pressure_report(make_kernel("dot_product"), paper_l6)
        assert report.ii >= report.mii
