"""Unit tests for the greedy swapping pass (paper, Table 4)."""

import pytest

from repro.core.dualfile import allocate_dual
from repro.core.swapping import SwapEstimator, _candidate_pairs, greedy_swap
from repro.core.clustering import scheduler_assignment
from repro.sched.modulo import modulo_schedule
from repro.workloads.kernels import all_kernels


class TestPaperTable4:
    def test_swapped_requirement_23(self, example_schedule):
        result = greedy_swap(example_schedule)
        alloc = allocate_dual(result.schedule, result.assignment)
        assert alloc.registers_required == 23

    def test_no_globals_after_swap(self, example_schedule):
        result = greedy_swap(example_schedule)
        alloc = allocate_dual(result.schedule, result.assignment)
        assert alloc.global_registers == 0

    def test_cluster_split_19_23(self, example_schedule):
        result = greedy_swap(example_schedule)
        alloc = allocate_dual(result.schedule, result.assignment)
        assert sorted(alloc.per_cluster.values()) == [19, 23]

    def test_estimate_improves(self, example_schedule):
        result = greedy_swap(example_schedule)
        assert result.estimate_after < result.estimate_before
        assert result.n_swaps >= 1


class TestCandidates:
    def test_candidates_same_pool_different_cluster(self, example_schedule):
        assignment = scheduler_assignment(example_schedule)
        pairs = _candidate_pairs(example_schedule, assignment)
        graph = example_schedule.graph
        for a, b in pairs:
            pa = example_schedule.placement(a)
            pb = example_schedule.placement(b)
            assert pa.pool == pb.pool
            assert pa.row(example_schedule.ii) == pb.row(example_schedule.ii)
            assert assignment[a] != assignment[b]

    def test_same_cluster_ops_not_candidates(self, example_schedule):
        assignment = {
            op.op_id: 0 for op in example_schedule.graph.operations
        }
        assert _candidate_pairs(example_schedule, assignment) == []


class TestGeneralInvariants:
    def test_swap_never_hurts(self, paper_l6):
        for loop in all_kernels():
            schedule = modulo_schedule(loop.graph, paper_l6)
            base = allocate_dual(schedule).registers_required
            result = greedy_swap(schedule)
            swapped = allocate_dual(
                result.schedule, result.assignment
            ).registers_required
            # The estimator is a bound, not exact: allow equality plus a
            # one-register estimator artifact, never a real regression.
            assert swapped <= base + 1

    def test_swapped_schedule_still_valid(self, paper_l6):
        for loop in all_kernels()[:8]:
            schedule = modulo_schedule(loop.graph, paper_l6)
            result = greedy_swap(schedule)
            result.schedule.verify()

    def test_assignment_consistent_with_schedule(self, example_schedule):
        result = greedy_swap(example_schedule)
        for op in result.schedule.graph.operations:
            assert result.assignment[op.op_id] == result.schedule.cluster_of(
                op.op_id
            )

    def test_firstfit_estimator(self, example_schedule):
        result = greedy_swap(
            example_schedule, estimator=SwapEstimator.FIRSTFIT
        )
        alloc = allocate_dual(result.schedule, result.assignment)
        assert alloc.registers_required <= 23

    def test_max_steps_zero_is_identity(self, example_schedule):
        result = greedy_swap(example_schedule, max_steps=0)
        assert result.n_swaps == 0
        assert result.estimate_after == result.estimate_before
