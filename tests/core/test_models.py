"""Unit tests for the four evaluation models."""

import pytest

from repro.core.models import Model, required_registers
from repro.sched.modulo import modulo_schedule
from repro.workloads.kernels import all_kernels


class TestModelEnum:
    def test_dual_models(self):
        assert Model.PARTITIONED.is_dual
        assert Model.SWAPPED.is_dual
        assert not Model.UNIFIED.is_dual
        assert not Model.IDEAL.is_dual


class TestRequirements:
    def test_example_numbers(self, example_schedule):
        assert required_registers(example_schedule, Model.UNIFIED).registers == 42
        assert (
            required_registers(example_schedule, Model.PARTITIONED).registers
            == 29
        )
        assert required_registers(example_schedule, Model.SWAPPED).registers == 23

    def test_ideal_reports_unified_requirement(self, example_schedule):
        ideal = required_registers(example_schedule, Model.IDEAL)
        unified = required_registers(example_schedule, Model.UNIFIED)
        assert ideal.registers == unified.registers
        assert ideal.unified is not None

    def test_artifacts_attached(self, example_schedule):
        unified = required_registers(example_schedule, Model.UNIFIED)
        assert unified.unified is not None and unified.dual is None
        partitioned = required_registers(example_schedule, Model.PARTITIONED)
        assert partitioned.dual is not None and partitioned.unified is None
        swapped = required_registers(example_schedule, Model.SWAPPED)
        assert swapped.dual is not None and swapped.swap is not None

    def test_assignment_exposed_for_dual_models(self, example_schedule):
        partitioned = required_registers(example_schedule, Model.PARTITIONED)
        assert partitioned.assignment is not None
        unified = required_registers(example_schedule, Model.UNIFIED)
        assert unified.assignment is None

    def test_model_ordering_on_kernels(self, paper_l6):
        """swapped <= partitioned (+1 estimator slack) <= unified."""
        for loop in all_kernels():
            schedule = modulo_schedule(loop.graph, paper_l6)
            unified = required_registers(schedule, Model.UNIFIED).registers
            part = required_registers(schedule, Model.PARTITIONED).registers
            swapped = required_registers(schedule, Model.SWAPPED).registers
            assert part <= unified
            assert swapped <= part + 1
