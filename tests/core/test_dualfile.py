"""Unit tests for non-consistent dual register file allocation."""

import pytest

from repro.core.clustering import scheduler_assignment
from repro.core.dualfile import allocate_dual, dual_max_live
from repro.regalloc.allocation import allocate_unified
from repro.sched.modulo import modulo_schedule
from repro.workloads.kernels import all_kernels


class TestPaperTable3:
    def test_requirement_29(self, example_schedule):
        alloc = allocate_dual(example_schedule)
        assert alloc.registers_required == 29

    def test_global_registers_13(self, example_schedule):
        alloc = allocate_dual(example_schedule)
        assert alloc.global_registers == 13

    def test_left_13_local_right_16_local(self, example_schedule):
        alloc = allocate_dual(example_schedule)
        assert alloc.local_registers(0) == 13
        assert alloc.local_registers(1) == 16

    def test_per_cluster_totals(self, example_schedule):
        alloc = allocate_dual(example_schedule)
        assert alloc.per_cluster == {0: 26, 1: 29}

    def test_requirement_is_max_cluster(self, example_schedule):
        alloc = allocate_dual(example_schedule)
        assert alloc.registers_required == max(alloc.per_cluster.values())


class TestGeneralInvariants:
    @pytest.mark.parametrize("latency", [3, 6])
    def test_dual_never_worse_than_unified(self, latency):
        """Each subfile holds a subset of the unified file's values.

        First-fit is not monotone in general (see the property tests), but
        on the deterministic kernel set the plain bound holds and is pinned
        here as a regression guard.
        """
        from repro.machine.config import paper_config

        machine = paper_config(latency)
        for loop in all_kernels():
            schedule = modulo_schedule(loop.graph, machine)
            unified = allocate_unified(schedule)
            dual = allocate_dual(schedule)
            assert dual.registers_required <= unified.registers_required

    def test_dual_at_least_global_plus_best_local(self, example_schedule):
        alloc = allocate_dual(example_schedule)
        for cluster in (0, 1):
            assert alloc.cluster_registers(cluster) >= alloc.global_registers

    def test_maxlive_bound_is_lower_bound(self, paper_l6):
        for loop in all_kernels():
            schedule = modulo_schedule(loop.graph, paper_l6)
            assignment = scheduler_assignment(schedule)
            alloc = allocate_dual(schedule, assignment)
            bound = dual_max_live(schedule, assignment)
            assert bound <= alloc.registers_required

    def test_explicit_assignment_respected(self, example_schedule):
        """Forcing every op into cluster 0 makes everything left-local."""
        assignment = {
            op.op_id: 0 for op in example_schedule.graph.operations
        }
        alloc = allocate_dual(example_schedule, assignment)
        assert not alloc.classes.global_ids
        assert alloc.cluster_registers(0) == 42  # the unified requirement
        assert alloc.cluster_registers(1) == 0
