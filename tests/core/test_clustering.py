"""Unit tests for cluster assignment and GL/LO/RO classification."""

import pytest

from repro.core.clustering import (
    classify_values,
    consumer_clusters,
    scheduler_assignment,
)


@pytest.fixture()
def assignment(example_schedule):
    return scheduler_assignment(example_schedule)


@pytest.fixture()
def named(example_schedule):
    return {op.name: op.op_id for op in example_schedule.graph.operations}


class TestSchedulerAssignment:
    def test_covers_all_ops(self, example_schedule, assignment):
        assert set(assignment) == {
            op.op_id for op in example_schedule.graph.operations
        }

    def test_paper_partition(self, example_schedule, assignment, named):
        left = {n for n, i in named.items() if assignment[i] == 0}
        right = {n for n, i in named.items() if assignment[i] == 1}
        assert left == {"L1", "L2", "M3", "A4"}
        assert right == {"M5", "A6", "S7"}


class TestConsumerClusters:
    def test_l1_read_by_both_clusters(self, example_schedule, assignment, named):
        clusters = consumer_clusters(example_schedule, assignment, named["L1"])
        assert clusters == frozenset({0, 1})

    def test_m3_read_by_left_only(self, example_schedule, assignment, named):
        assert consumer_clusters(
            example_schedule, assignment, named["M3"]
        ) == frozenset({0})

    def test_a4_value_follows_consumer_not_producer(
        self, example_schedule, assignment, named
    ):
        """A4 executes on the left but its value is right-only (paper 4.1)."""
        assert assignment[named["A4"]] == 0
        assert consumer_clusters(
            example_schedule, assignment, named["A4"]
        ) == frozenset({1})

    def test_unconsumed_value_stays_with_producer(self, paper_l3):
        from repro.ir.builder import LoopBuilder
        from repro.sched.modulo import modulo_schedule

        b = LoopBuilder()
        x = b.load("x")
        dead = b.mul(x, "c")
        b.store(x, "y")
        schedule = modulo_schedule(b.build().graph, paper_l3)
        assignment = scheduler_assignment(schedule)
        clusters = consumer_clusters(schedule, assignment, dead.op_id)
        assert clusters == frozenset({assignment[dead.op_id]})


class TestClassification:
    def test_paper_table3_classes(self, example_schedule, assignment, named):
        classes = classify_values(example_schedule, assignment)
        assert classes.global_ids == {named["L1"]}
        assert classes.local_ids[0] == {named["L2"], named["M3"]}
        assert classes.local_ids[1] == {named["A4"], named["M5"], named["A6"]}

    def test_cluster_value_ids_unions_globals(
        self, example_schedule, assignment, named
    ):
        classes = classify_values(example_schedule, assignment)
        assert named["L1"] in classes.cluster_value_ids(0)
        assert named["L1"] in classes.cluster_value_ids(1)
        assert named["M3"] not in classes.cluster_value_ids(1)

    def test_every_value_classified_once(self, example_schedule, assignment):
        classes = classify_values(example_schedule, assignment)
        all_ids = set(classes.global_ids)
        for ids in classes.local_ids.values():
            assert not (all_ids & ids)
            all_ids |= ids
        assert all_ids == {
            op.op_id for op in example_schedule.graph.values()
        }

    def test_clusters_property(self, example_schedule, assignment):
        classes = classify_values(example_schedule, assignment)
        assert classes.clusters == [0, 1]
