"""Property-based tests for the extension modules (MVE, compaction,
n-cluster allocation, moves)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dualfile import allocate_dual
from repro.core.swapping import greedy_swap
from repro.machine.config import clustered_config, paper_config
from repro.regalloc.allocation import allocate_unified
from repro.regalloc.firstfit import verify_disjoint
from repro.regalloc.mve import allocate_mve
from repro.sched.compact import compact_schedule
from repro.sched.modulo import modulo_schedule
from repro.workloads.synthetic import generate_loop

loop_indices = st.integers(0, 200)
latencies = st.sampled_from([3, 6])


class TestMveProperties:
    @given(loop_indices, latencies)
    @settings(max_examples=40, deadline=None)
    def test_mve_bounds(self, index, latency):
        loop = generate_loop(index)
        schedule = modulo_schedule(loop.graph, paper_config(latency))
        mve = allocate_mve(schedule)
        unified = allocate_unified(schedule)
        # Per-value ceilings dominate the fractional-packing lower bound.
        assert mve.registers_required >= unified.max_live
        assert mve.unroll_factor >= 1
        assert mve.unroll_factor_lcm % mve.unroll_factor == 0
        assert mve.code_expansion >= len(schedule.graph)


class TestCompactionProperties:
    @given(st.integers(0, 80), latencies)
    @settings(max_examples=12, deadline=None)
    def test_compaction_invariants(self, index, latency):
        loop = generate_loop(index)
        schedule = modulo_schedule(loop.graph, paper_config(latency))
        result = compact_schedule(schedule, max_steps=6)
        result.schedule.verify()
        assert result.schedule.ii == schedule.ii
        assert result.max_live_after <= result.max_live_before


class TestNClusterProperties:
    @given(loop_indices, st.sampled_from([2, 3, 4]))
    @settings(max_examples=20, deadline=None)
    def test_subfiles_always_disjoint(self, index, n_clusters):
        loop = generate_loop(index)
        machine = clustered_config(n_clusters, fp_latency=6)
        schedule = modulo_schedule(loop.graph, machine)
        alloc = allocate_dual(schedule)
        for cluster in range(n_clusters):
            verify_disjoint(
                alloc.file_allocation(cluster).placements.values()
            )
        # Every value is stored somewhere, and only in consumer clusters.
        for op in schedule.graph.values():
            clusters = alloc.classes.value_clusters[op.op_id]
            assert clusters
            assert clusters <= set(range(n_clusters))

    @given(loop_indices, st.sampled_from([2, 4]))
    @settings(max_examples=15, deadline=None)
    def test_requirement_is_max_subfile(self, index, n_clusters):
        loop = generate_loop(index)
        machine = clustered_config(n_clusters, fp_latency=3)
        schedule = modulo_schedule(loop.graph, machine)
        alloc = allocate_dual(schedule)
        assert alloc.registers_required == max(
            alloc.cluster_registers(c) for c in range(n_clusters)
        )


class TestMoveProperties:
    @given(st.integers(0, 100))
    @settings(max_examples=15, deadline=None)
    def test_moves_respect_rows_pools_and_estimate(self, index):
        loop = generate_loop(index)
        schedule = modulo_schedule(loop.graph, paper_config(6))
        result = greedy_swap(schedule, allow_moves=True)
        result.schedule.verify()
        assert result.estimate_after <= result.estimate_before
        for op in schedule.graph.operations:
            before = schedule.placement(op.op_id)
            after = result.schedule.placement(op.op_id)
            assert before.time == after.time
            assert before.pool == after.pool
