"""Pipeline properties on fully random (non-calibrated) dependence graphs.

These complement ``test_pipeline_properties`` by sampling the whole space of
valid graph shapes, including degenerate ones the workload generator never
emits.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dualfile import allocate_dual, dual_max_live
from repro.core.clustering import scheduler_assignment
from repro.core.swapping import greedy_swap
from repro.ir.validate import validate_graph
from repro.machine.config import paper_config
from repro.regalloc.allocation import allocate_unified
from repro.regalloc.mve import allocate_mve
from repro.sched.codegen import emit_replicated, emit_rotating
from repro.sched.mii import minimum_ii
from repro.sched.modulo import modulo_schedule
from repro.sim.executor import execute_kernel

from strategies import dependence_graphs

latencies = st.sampled_from([3, 6])


class TestRandomGraphPipeline:
    @given(dependence_graphs(), latencies)
    @settings(max_examples=60, deadline=None)
    def test_generated_graphs_are_valid(self, graph, latency):
        validate_graph(graph)

    @given(dependence_graphs(), latencies)
    @settings(max_examples=40, deadline=None)
    def test_schedule_allocate_verify(self, graph, latency):
        machine = paper_config(latency)
        schedule = modulo_schedule(graph, machine)
        schedule.verify()
        assert schedule.ii >= minimum_ii(graph, machine).mii
        unified = allocate_unified(schedule)
        assert unified.registers_required >= unified.max_live

    @given(dependence_graphs(), latencies)
    @settings(max_examples=30, deadline=None)
    def test_dual_and_swap(self, graph, latency):
        machine = paper_config(latency)
        schedule = modulo_schedule(graph, machine)
        assignment = scheduler_assignment(schedule)
        dual = allocate_dual(schedule, assignment)
        assert dual_max_live(schedule, assignment) <= dual.registers_required
        swap = greedy_swap(schedule)
        assert swap.estimate_after <= swap.estimate_before

    @given(dependence_graphs(max_arith=8), latencies)
    @settings(max_examples=20, deadline=None)
    def test_execution_verifies(self, graph, latency):
        machine = paper_config(latency)
        schedule = modulo_schedule(graph, machine)
        execute_kernel(schedule, allocate_unified(schedule), iterations=4)
        execute_kernel(schedule, allocate_dual(schedule), iterations=4)

    @given(dependence_graphs(max_arith=6))
    @settings(max_examples=20, deadline=None)
    def test_codegen_consistency(self, graph):
        machine = paper_config(6)
        schedule = modulo_schedule(graph, machine)
        rotating = emit_rotating(schedule)
        replicated = emit_replicated(schedule)
        assert rotating.words == schedule.ii
        assert replicated.words >= rotating.words
        unroll = allocate_mve(schedule).unroll_factor
        assert replicated.kernel_copies == unroll
        total_slots = sum(len(i.slots) for i in replicated.instructions)
        n_iterations = (schedule.stage_count - 1) + unroll
        assert total_slots == n_iterations * len(graph)
