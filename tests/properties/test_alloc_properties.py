"""Property-based tests for lifetimes, MaxLive and first-fit allocation."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.regalloc.firstfit import first_fit, verify_disjoint
from repro.regalloc.lifetimes import Lifetime
from repro.regalloc.maxlive import average_live, live_at, max_live

lifetime_lists = st.lists(
    st.tuples(st.integers(0, 40), st.integers(1, 30)),
    min_size=0,
    max_size=25,
).map(
    lambda pairs: [
        Lifetime(i, start, start + length)
        for i, (start, length) in enumerate(pairs)
    ]
)

iis = st.integers(1, 12)


class TestFirstFitProperties:
    @given(lifetime_lists, iis)
    @settings(max_examples=150, deadline=None)
    def test_placements_always_disjoint(self, lts, ii):
        result = first_fit(lts, ii)
        verify_disjoint(result.placements.values())

    @given(lifetime_lists, iis)
    @settings(max_examples=150, deadline=None)
    def test_at_least_maxlive(self, lts, ii):
        result = first_fit(lts, ii)
        assert result.registers_required >= max_live(lts, ii)

    @given(lifetime_lists, iis)
    @settings(max_examples=150, deadline=None)
    def test_at_least_average_live(self, lts, ii):
        result = first_fit(lts, ii)
        assert result.registers_required >= math.ceil(
            average_live(lts, ii) - 1e-9
        )

    @given(lifetime_lists, iis)
    @settings(max_examples=100, deadline=None)
    def test_every_lifetime_placed_unshrunk(self, lts, ii):
        result = first_fit(lts, ii)
        assert set(result.placements) == {lt.op_id for lt in lts}
        for lt in lts:
            placed = result.placements[lt.op_id]
            assert placed.end - placed.start == lt.length
            assert placed.shift >= 0
            assert (placed.start - lt.start) % ii == 0

    @given(lifetime_lists)
    @settings(max_examples=100, deadline=None)
    def test_ii_one_packs_common_start_perfectly(self, lts):
        """At II=1 with aligned starts, first-fit leaves no gaps (the sum of
        lifetimes of the paper's example).  Shifts only move forward, so
        gaps *before* a later-starting lifetime can survive in general."""
        aligned = [Lifetime(lt.op_id, 0, lt.length) for lt in lts]
        result = first_fit(aligned, 1)
        assert result.registers_required == sum(lt.length for lt in lts)

    @given(lifetime_lists, iis)
    @settings(max_examples=100, deadline=None)
    def test_fixed_placements_respected(self, lts, ii):
        if not lts:
            return
        head, tail = lts[:1], lts[1:]
        fixed = first_fit(head, ii)
        rest = first_fit(tail, ii, fixed=tuple(fixed.placements.values()))
        verify_disjoint(
            list(fixed.placements.values()) + list(rest.placements.values())
        )

    @given(lifetime_lists, iis)
    @settings(max_examples=100, deadline=None)
    def test_deterministic(self, lts, ii):
        a = first_fit(lts, ii)
        b = first_fit(list(reversed(lts)), ii)
        assert {i: p.shift for i, p in a.placements.items()} == {
            i: p.shift for i, p in b.placements.items()
        }


class TestMaxLiveProperties:
    @given(lifetime_lists, iis)
    @settings(max_examples=150, deadline=None)
    def test_maxlive_at_least_average(self, lts, ii):
        assert max_live(lts, ii) >= average_live(lts, ii) - 1e-9

    @given(lifetime_lists, iis)
    @settings(max_examples=150, deadline=None)
    def test_live_counts_nonnegative(self, lts, ii):
        for lt in lts:
            for c in range(ii):
                assert live_at(lt, c, ii) >= 0

    @given(
        st.integers(0, 30),
        st.integers(1, 40),
        iis,
    )
    @settings(max_examples=150, deadline=None)
    def test_single_lifetime_instances_bracket_length(self, start, length, ii):
        lt = Lifetime(0, start, start + length)
        counts = [live_at(lt, c, ii) for c in range(ii)]
        assert max(counts) == math.ceil(length / ii)
        assert min(counts) == math.floor(length / ii)

    @given(lifetime_lists, iis)
    @settings(max_examples=100, deadline=None)
    def test_maxlive_monotone_under_union(self, lts, ii):
        half = lts[: len(lts) // 2]
        assert max_live(half, ii) <= max_live(lts, ii)
