"""Property-based tests over the seeded synthetic loop family.

Hypothesis draws loop indices (and machine parameters) and checks that every
stage of the pipeline upholds its invariants on arbitrary generated loops --
scheduling, allocation, clustering, swapping, spilling, and the verifying
simulator end to end.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.clustering import classify_values, scheduler_assignment
from repro.core.dualfile import allocate_dual, dual_max_live
from repro.core.models import Model, required_registers
from repro.core.swapping import greedy_swap
from repro.machine.config import paper_config
from repro.regalloc.allocation import allocate_unified
from repro.sched.mii import minimum_ii
from repro.sched.modulo import modulo_schedule
from repro.sim.executor import execute_kernel
from repro.spill.spiller import evaluate_loop, pick_victim, spill_value
from repro.workloads.synthetic import generate_loop

loop_indices = st.integers(0, 300)
latencies = st.sampled_from([3, 6])


class TestSchedulerProperties:
    @given(loop_indices, latencies)
    @settings(max_examples=60, deadline=None)
    def test_schedules_verify(self, index, latency):
        loop = generate_loop(index)
        machine = paper_config(latency)
        schedule = modulo_schedule(loop.graph, machine)
        schedule.verify()

    @given(loop_indices, latencies)
    @settings(max_examples=60, deadline=None)
    def test_ii_at_least_mii(self, index, latency):
        loop = generate_loop(index)
        machine = paper_config(latency)
        schedule = modulo_schedule(loop.graph, machine)
        assert schedule.ii >= minimum_ii(loop.graph, machine).mii


class TestAllocationProperties:
    @given(loop_indices, latencies)
    @settings(max_examples=40, deadline=None)
    def test_dual_close_to_or_below_unified(self, index, latency):
        """Each subfile holds a subset of the unified file's values, so the
        dual requirement is essentially bounded by the unified one.  First
        fit, however, is not monotone: packing *fewer* intervals can
        occasionally cost one extra register (the removed intervals were
        filling gaps), so the bound carries a tiny additive slack.  The
        MaxLive bound below is subset-monotone and exact."""
        loop = generate_loop(index)
        schedule = modulo_schedule(loop.graph, paper_config(latency))
        unified = allocate_unified(schedule)
        dual = allocate_dual(schedule)
        assert dual.registers_required <= unified.registers_required + 2
        from repro.core.clustering import scheduler_assignment
        from repro.core.dualfile import dual_max_live

        assert (
            dual_max_live(schedule, scheduler_assignment(schedule))
            <= unified.max_live
        )

    @given(loop_indices, latencies)
    @settings(max_examples=40, deadline=None)
    def test_classification_partitions_values(self, index, latency):
        loop = generate_loop(index)
        schedule = modulo_schedule(loop.graph, paper_config(latency))
        assignment = scheduler_assignment(schedule)
        classes = classify_values(schedule, assignment)
        seen = set(classes.global_ids)
        for ids in classes.local_ids.values():
            assert not seen & ids
            seen |= ids
        assert seen == {op.op_id for op in schedule.graph.values()}

    @given(loop_indices, latencies)
    @settings(max_examples=40, deadline=None)
    def test_maxlive_bounds_dual_requirement(self, index, latency):
        loop = generate_loop(index)
        schedule = modulo_schedule(loop.graph, paper_config(latency))
        assignment = scheduler_assignment(schedule)
        assert dual_max_live(schedule, assignment) <= allocate_dual(
            schedule, assignment
        ).registers_required


class TestSwappingProperties:
    @given(loop_indices, latencies)
    @settings(max_examples=25, deadline=None)
    def test_swap_estimate_never_increases(self, index, latency):
        loop = generate_loop(index)
        schedule = modulo_schedule(loop.graph, paper_config(latency))
        result = greedy_swap(schedule)
        assert result.estimate_after <= result.estimate_before
        result.schedule.verify()

    @given(loop_indices)
    @settings(max_examples=25, deadline=None)
    def test_swap_preserves_rows_and_pools(self, index):
        loop = generate_loop(index)
        schedule = modulo_schedule(loop.graph, paper_config(3))
        result = greedy_swap(schedule)
        for op in schedule.graph.operations:
            before = schedule.placement(op.op_id)
            after = result.schedule.placement(op.op_id)
            assert before.time == after.time
            assert before.pool == after.pool


class TestSpillProperties:
    @given(loop_indices, latencies)
    @settings(max_examples=20, deadline=None)
    def test_spilling_victim_reduces_its_lifetime_pressure(
        self, index, latency
    ):
        from repro.ir.validate import validate_graph

        loop = generate_loop(index)
        machine = paper_config(latency)
        schedule = modulo_schedule(loop.graph, machine)
        victim = pick_victim(schedule)
        if victim is None:
            return
        spilled = spill_value(loop.graph, victim)
        validate_graph(spilled)
        reschedule = modulo_schedule(spilled, machine)
        reschedule.verify()

    @given(loop_indices, latencies, st.sampled_from([16, 32, 64]))
    @settings(max_examples=15, deadline=None)
    def test_budget_respected_when_fits(self, index, latency, budget):
        loop = generate_loop(index)
        ev = evaluate_loop(
            loop, paper_config(latency), Model.UNIFIED, register_budget=budget
        )
        if ev.fits:
            assert ev.requirement.registers <= budget
        ev.schedule.verify()


class TestEndToEndSimulation:
    @given(loop_indices, latencies)
    @settings(max_examples=15, deadline=None)
    def test_unified_execution_verifies(self, index, latency):
        loop = generate_loop(index)
        schedule = modulo_schedule(loop.graph, paper_config(latency))
        execute_kernel(schedule, allocate_unified(schedule), iterations=4)

    @given(loop_indices, latencies)
    @settings(max_examples=15, deadline=None)
    def test_swapped_dual_execution_verifies(self, index, latency):
        loop = generate_loop(index)
        schedule = modulo_schedule(loop.graph, paper_config(latency))
        result = greedy_swap(schedule)
        alloc = allocate_dual(result.schedule, result.assignment)
        execute_kernel(result.schedule, alloc, iterations=4)

    @given(loop_indices)
    @settings(max_examples=10, deadline=None)
    def test_spilled_execution_verifies(self, index):
        loop = generate_loop(index)
        ev = evaluate_loop(
            loop, paper_config(6), Model.UNIFIED, register_budget=16
        )
        if ev.requirement.unified is not None:
            execute_kernel(ev.schedule, ev.requirement.unified, iterations=4)
