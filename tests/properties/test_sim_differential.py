"""Simulator-grounded differential properties: execution proves analysis.

Every randomly generated loop point is pushed through the full pipeline
under every kernel tier (``batch``/``1``/``0``) and then *executed*
cycle-by-cycle: :func:`repro.validate.validate_point` cross-checks the
observed II, per-file register occupancy, and memory-bus traffic against
the analytical claims, and requires the tiers to agree with each other.
A failure here is an execution counterexample, not a modelling
disagreement -- the reproducer spec in the failure output replays it.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.models import Model
from repro.ir.loop import Loop
from repro.machine.config import paper_config
from repro.validate import TIERS, validate_point

from strategies import dependence_graphs, high_pressure_graphs, machines

#: (model, register budget) points per graph; the small dual budgets force
#: the spill-until-fits loop so spill store/reload chains get executed too.
MODEL_POINTS = (
    (Model.IDEAL, None),
    (Model.UNIFIED, 8),
    (Model.PARTITIONED, 6),
    (Model.SWAPPED, 6),
)


def _validate_all_models(graph, machine, iterations=6):
    loop = Loop(name="hyp", graph=graph, trip_count=50)
    for model, budget in MODEL_POINTS:
        report = validate_point(
            loop,
            machine,
            model,
            register_budget=budget,
            tiers=TIERS,
            iterations=iterations,
        )
        assert report.ok, report.describe()


class TestRandomGraphs:
    @given(dependence_graphs(), st.sampled_from([3, 6]))
    @settings(max_examples=15, deadline=None)
    def test_every_model_and_tier_execution_consistent(self, graph, latency):
        _validate_all_models(graph, paper_config(latency))


class TestAdversarialGraphs:
    """High-pressure graphs with pre-spilled values and distance>1 edges,
    swept over the machine zoo -- including the single-cluster degenerate
    clustered machine, whose dual allocation has exactly one subfile."""

    @given(high_pressure_graphs(), machines())
    @settings(max_examples=10, deadline=None)
    def test_high_pressure_execution_consistent(self, graph, machine):
        _validate_all_models(graph, machine)
