"""Static-vs-dynamic differential: the prover and the simulator agree.

The static verifier (:mod:`repro.check`) claims to certify exactly what
the cycle-accurate simulator observes, without executing anything.  This
property pins that equivalence over adversarial random loops: for every
generated point, the static proof accepts iff dynamic validation of the
same evaluation accepts -- and on points where the dynamic gate is
clean, the static gate must not invent findings.

A divergence here is a modelling bug in one of the two gates; the
reproducer spec in the failure output replays the point through both.
"""

from __future__ import annotations

from hypothesis import given, settings

from repro.check import check_evaluation
from repro.core.models import Model
from repro.ir.loop import Loop
from repro.machine.config import paper_config
from repro.pipeline.pipelines import run_evaluation
from repro.validate import validate_point
from repro.validate.differential import validate_evaluation

from strategies import dependence_graphs, high_pressure_graphs, machines

MODEL_POINTS = (
    (Model.IDEAL, None),
    (Model.UNIFIED, 8),
    (Model.PARTITIONED, 6),
    (Model.SWAPPED, 6),
)


def _agree_on_all_models(graph, machine):
    loop = Loop(name="hyp", graph=graph, trip_count=50)
    for model, budget in MODEL_POINTS:
        evaluation = run_evaluation(loop, machine, model, budget)
        static = check_evaluation(evaluation)
        dynamic = validate_evaluation(evaluation)
        assert static.ok == dynamic.ok, (
            f"static and dynamic verdicts diverge for {model.value} "
            f"budget={budget}:\n{static.describe()}\n{dynamic.describe()}"
        )
        assert static.ok, static.describe()


class TestRandomGraphs:
    @given(dependence_graphs(), machines())
    @settings(max_examples=10, deadline=None)
    def test_static_and_dynamic_agree(self, graph, machine):
        _agree_on_all_models(graph, machine)


class TestAdversarialGraphs:
    """Pre-spilled graphs with loop-carried distances up to 5: the shape
    that exercises spill-chain checking and modulo MaxLive folding."""

    @given(high_pressure_graphs(), machines())
    @settings(max_examples=10, deadline=None)
    def test_static_and_dynamic_agree_under_pressure(self, graph, machine):
        _agree_on_all_models(graph, machine)


class TestStaticTierInValidatePoint:
    """``validate_point(static=True)`` folds the proof into the report."""

    @given(dependence_graphs())
    @settings(max_examples=5, deadline=None)
    def test_static_tier_rides_the_report(self, graph):
        loop = Loop(name="hyp", graph=graph, trip_count=50)
        report = validate_point(
            loop, paper_config(6), Model.UNIFIED, register_budget=8
        )
        assert report.static is not None
        assert report.ok, report.describe()
        assert "static" in report.describe()
