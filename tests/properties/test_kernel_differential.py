"""Differential properties: array kernels vs the dict-based reference.

Every public hot-path entry point dispatches on :func:`repro.kernel.
kernels_enabled`; these tests drive *both* implementations over seeded
synthetic loops (the calibrated workload) and hypothesis-generated graphs
(the degenerate corners) and require bit-identical outcomes: same II and
placements, same lifetimes, same register counts under every model, same
swap traces, same spill traffic.  Any divergence is a kernel bug by
definition -- the dict implementations are the specification.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import kernel
from repro.core.models import Model, required_registers
from repro.core.swapping import SwapEstimator, greedy_swap
from repro.engine.jobs import evaluate_job, pressure_job
from repro.engine.pool import run_jobs
from repro.ir.loop import Loop
from repro.machine.config import clustered_config, paper_config
from repro.pipeline import ArtifactStore, run_evaluation, run_pressure
from repro.regalloc.allocation import allocate_unified
from repro.regalloc.lifetimes import lifetimes
from repro.regalloc.maxlive import live_profile
from repro.sched.modulo import modulo_schedule
from repro.workloads.synthetic import generate_loop

from strategies import dependence_graphs, high_pressure_graphs, machines

SEEDS = range(24)


def _both(fn):
    """Run ``fn`` under both implementations, returning the two results."""
    with kernel.use_kernels(False):
        legacy = fn()
    with kernel.use_kernels(True):
        arrays = fn()
    return legacy, arrays


class TestSyntheticLoops:
    @pytest.mark.parametrize("index", SEEDS)
    def test_schedule_and_lifetimes_identical(self, index, paper_l6):
        loop = generate_loop(index)
        legacy, arrays = _both(
            lambda: modulo_schedule(loop.graph, paper_l6)
        )
        assert legacy.ii == arrays.ii
        assert legacy.placements == arrays.placements
        l0, l1 = _both(lambda: lifetimes(legacy))
        assert l0 == l1
        assert list(l0) == list(l1)  # same key order at the boundary

    @pytest.mark.parametrize("index", SEEDS)
    def test_requirements_identical_all_models(self, index, paper_l6):
        loop = generate_loop(index)
        schedule = modulo_schedule(loop.graph, paper_l6)

        def measure():
            return {
                model: required_registers(schedule, model).registers
                for model in Model
            }

        legacy, arrays = _both(measure)
        assert legacy == arrays

    @pytest.mark.parametrize("index", SEEDS)
    def test_swap_traces_identical(self, index, paper_l6):
        loop = generate_loop(index)
        schedule = modulo_schedule(loop.graph, paper_l6)

        def swap(**kwargs):
            result = greedy_swap(schedule, **kwargs)
            return (
                result.swaps,
                result.moves,
                result.estimate_before,
                result.estimate_after,
                result.assignment,
                result.schedule.placements,
            )

        for kwargs in (
            {},
            {"allow_moves": True},
            {"estimator": SwapEstimator.FIRSTFIT},
        ):
            legacy, arrays = _both(lambda: swap(**kwargs))
            assert legacy == arrays, kwargs

    @pytest.mark.parametrize("index", range(12))
    def test_spill_evaluation_identical(self, index, paper_l6):
        loop = generate_loop(index)

        def evaluate():
            out = []
            store = ArtifactStore(max_entries=1024)
            for model in (Model.UNIFIED, Model.PARTITIONED, Model.SWAPPED):
                ev = run_evaluation(
                    loop, paper_l6, model, register_budget=24, store=store
                )
                out.append(
                    (
                        ev.ii,
                        ev.spilled_values,
                        ev.ii_increases,
                        ev.fits,
                        ev.requirement.registers,
                        ev.spill_ops_per_iteration,
                        ev.memory_ops_per_iteration,
                    )
                )
            return out

        legacy, arrays = _both(evaluate)
        assert legacy == arrays

    @pytest.mark.parametrize("index", range(8))
    def test_pressure_identical_on_four_clusters(self, index):
        machine = clustered_config(4)
        loop = generate_loop(index)

        def pressure():
            report = run_pressure(loop, machine, store=ArtifactStore(256))
            return (
                report.ii,
                report.unified,
                report.partitioned,
                report.swapped,
                report.max_live,
            )

        legacy, arrays = _both(pressure)
        assert legacy == arrays


class TestRandomGraphs:
    @given(dependence_graphs(), st.sampled_from([3, 6]))
    @settings(max_examples=25, deadline=None)
    def test_schedule_allocation_swap_identical(self, graph, latency):
        machine = paper_config(latency)
        legacy, arrays = _both(lambda: modulo_schedule(graph, machine))
        assert legacy.ii == arrays.ii
        assert legacy.placements == arrays.placements
        schedule = legacy

        def analyze():
            lts = lifetimes(schedule)
            unified = allocate_unified(schedule, lts=lts)
            swap = greedy_swap(schedule, lts=lts)
            return (
                {op_id: (p.shift) for op_id, p in unified.result.placements.items()},
                unified.registers_required,
                live_profile(lts.values(), schedule.ii),
                swap.swaps,
                swap.estimate_before,
                swap.estimate_after,
            )

        l0, l1 = _both(analyze)
        assert l0 == l1


class TestBatchDifferential:
    """The engine's grid-batched tier against per-point and legacy.

    The walk sharing of :class:`repro.kernel.batch.LoopChain` (memoized
    chain nodes, lower-bound gating, array-space spilling) must be
    invisible at the ``run_jobs`` boundary: every (model, budget) point of
    a random graph returns the identical :class:`JobResult` under tiers
    ``"batch"``, ``"1"`` and ``"0"``.
    """

    @given(dependence_graphs(), st.sampled_from([3, 6]))
    @settings(max_examples=20, deadline=None)
    def test_engine_tiers_identical(self, graph, latency):
        machine = paper_config(latency)
        loop = Loop(name="hyp", graph=graph, trip_count=50)
        jobs = [evaluate_job(loop, machine, Model.IDEAL, None)]
        for budget in (4, 12):
            for model in (Model.UNIFIED, Model.PARTITIONED, Model.SWAPPED):
                jobs.append(evaluate_job(loop, machine, model, budget))
        jobs.append(pressure_job(loop, machine))
        out = {}
        for tier in ("batch", "1", "0"):
            with kernel.use_kernels(tier):
                out[tier] = run_jobs(jobs, workers=0, cache=None)
        assert out["batch"] == out["1"]
        assert out["1"] == out["0"]

    @given(high_pressure_graphs(), machines())
    @settings(max_examples=10, deadline=None)
    def test_engine_tiers_identical_under_pressure(self, graph, machine):
        """The adversarial shapes the sim differential sweeps -- dense
        arithmetic, pre-spilled store/reload chains, distance>1 edges,
        degenerate single-cluster machines -- must also leave the kernel
        tiers bit-identical at the ``run_jobs`` boundary."""
        loop = Loop(name="hyp-pressure", graph=graph, trip_count=50)
        jobs = [evaluate_job(loop, machine, Model.IDEAL, None)]
        for model in (Model.UNIFIED, Model.PARTITIONED, Model.SWAPPED):
            jobs.append(evaluate_job(loop, machine, model, 6))
        jobs.append(pressure_job(loop, machine))
        out = {}
        for tier in ("batch", "1", "0"):
            with kernel.use_kernels(tier):
                out[tier] = run_jobs(jobs, workers=0, cache=None)
        assert out["batch"] == out["1"]
        assert out["1"] == out["0"]
