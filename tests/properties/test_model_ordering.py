"""The paper's model-ordering invariants, through the pass pipeline.

Section 5's comparison rests on an ordering between the register-file
models.  Two forms are theorems of the algorithms and are asserted exactly
on random suites:

* under the exact first-fit swap estimator, the Swapped requirement never
  exceeds the Partitioned one (greedy swapping only applies strictly
  improving steps, measured by the very allocation that defines the
  requirement);
* under the paper's MaxLive estimator the same holds for the *estimate*
  (``estimate_after <= estimate_before``); the final first-fit allocation
  tracks the estimate to within a register or two, and on rare loops
  (e.g. synthetic loop 151 at latency 6) lands slightly above Partitioned
  -- so the allocation-level assertion carries that small tolerance;
* the Ideal machine's II lower-bounds every finite model's achieved II
  (finite models only add spill code and escalate the II).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.models import Model
from repro.core.swapping import SwapEstimator
from repro.machine.config import paper_config
from repro.pipeline import run_evaluation, run_pressure
from repro.workloads.synthetic import generate_loop

loop_indices = st.integers(0, 300)
latencies = st.sampled_from([3, 6])

#: MaxLive is a lower-bound estimator: the greedy pass optimizes it
#: monotonically, but the final first-fit allocation may land a whisker
#: above the Partitioned allocation it replaced.
MAXLIVE_SLACK = 2


class TestSwappedVersusPartitioned:
    @given(loop_indices, latencies)
    @settings(max_examples=25, deadline=None)
    def test_exact_estimator_never_worse(self, index, latency):
        report = run_pressure(
            generate_loop(index),
            paper_config(latency),
            swap_estimator=SwapEstimator.FIRSTFIT,
        )
        assert report.swapped <= report.partitioned

    @given(loop_indices, latencies)
    @settings(max_examples=50, deadline=None)
    def test_maxlive_estimate_monotone(self, index, latency):
        from repro.pipeline.context import PassContext

        ctx = PassContext(
            loop=generate_loop(index), machine=paper_config(latency)
        )
        swap = ctx.swap_result
        assert swap.estimate_after <= swap.estimate_before
        report = run_pressure(ctx.loop, ctx.machine)
        assert report.swapped <= report.partitioned + MAXLIVE_SLACK


class TestIdealBoundsFiniteModels:
    @given(loop_indices, latencies, st.sampled_from([24, 32, 64]))
    @settings(max_examples=25, deadline=None)
    def test_ideal_ii_is_a_floor(self, index, latency, budget):
        loop = generate_loop(index)
        machine = paper_config(latency)
        ideal = run_evaluation(loop, machine, Model.IDEAL, budget)
        for model in (Model.UNIFIED, Model.PARTITIONED, Model.SWAPPED):
            finite = run_evaluation(loop, machine, model, budget)
            assert ideal.ii <= finite.ii, model
            assert ideal.ii >= ideal.mii
