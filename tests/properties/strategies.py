"""Hypothesis strategies building random *valid* dependence graphs directly.

Unlike the seeded synthetic generator (which explores a realistic, calibrated
corner of the space), these strategies explore the full space of structurally
valid graphs -- degenerate shapes included: single-op loops, pure load/store
shuffles, deep unary chains, distance-3 recurrences, dead values.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.ir.ddg import DependenceGraph
from repro.ir.operation import Immediate, InvariantRef, OpType, ValueRef
from repro.machine.config import clustered_config, paper_config
from repro.spill.spiller import SpillError, spill_value, spillable_values

_BINARY = (OpType.FADD, OpType.FSUB, OpType.FMUL, OpType.FDIV)
_UNARY = (OpType.FNEG, OpType.FCONV)


@st.composite
def dependence_graphs(
    draw,
    max_arith: int = 12,
    max_loads: int = 4,
    allow_recurrences: bool = True,
    max_distance: int = 3,
) -> DependenceGraph:
    """A random valid dependence graph.

    Structure: some loads, a random arithmetic DAG over available values /
    invariants / immediates, optional distance>=1 back edges rewired into an
    operand (up to ``max_distance`` iterations back), and a store of the
    last value (keeping at least one memory op so every graph has defined
    traffic).
    """
    graph = DependenceGraph("hypothesis-loop")
    values: list[int] = []

    n_loads = draw(st.integers(1, max_loads))
    for i in range(n_loads):
        op = graph.add_operation(OpType.LOAD, symbol=f"arr{i}")
        values.append(op.op_id)

    n_arith = draw(st.integers(0, max_arith))
    for _ in range(n_arith):
        optype = draw(st.sampled_from(_BINARY + _UNARY))

        def operand(draw=draw):
            kind = draw(st.integers(0, 3))
            if kind == 0:
                return InvariantRef(draw(st.sampled_from(["a", "b", "c"])))
            if kind == 1:
                return Immediate(float(draw(st.integers(1, 5))))
            return ValueRef(draw(st.sampled_from(values)), 0)

        arity = 2 if optype in _BINARY else 1
        op = graph.add_operation(optype, tuple(operand() for _ in range(arity)))
        values.append(op.op_id)

    if allow_recurrences and len(values) > n_loads and draw(st.booleans()):
        # Rewire one operand of a later arithmetic op to a loop-carried use
        # of a value defined at or after it (a genuine recurrence) or before
        # it (a cross-iteration forward edge) -- both are valid at d >= 1.
        target_id = draw(st.sampled_from(values[n_loads:]))
        target = graph.op(target_id)
        if target.operands:
            pos = draw(st.integers(0, len(target.operands) - 1))
            source = draw(st.sampled_from(values))
            distance = draw(st.integers(1, max_distance))
            operands = list(target.operands)
            operands[pos] = ValueRef(source, distance)
            graph.set_operands(target_id, operands)

    graph.add_operation(
        OpType.STORE, (ValueRef(values[-1], 0),), symbol="out"
    )
    return graph


@st.composite
def high_pressure_graphs(draw) -> DependenceGraph:
    """Adversarial graphs the differential suites share.

    Dense arithmetic over many loads (high register pressure), loop-carried
    distances up to 5, and 0-2 values pre-spilled through the real spiller
    transform -- so the graph carries genuine ``sst``/``sld`` store/reload
    chains with MEMORY edges, the shape the spill-until-fits loop produces
    and the simulator must replay exactly.
    """
    graph = draw(
        dependence_graphs(max_arith=24, max_loads=6, max_distance=5)
    )
    for _ in range(draw(st.integers(0, 2))):
        candidates = spillable_values(graph)
        if not candidates:
            break
        victim = draw(st.sampled_from(candidates))
        try:
            graph = spill_value(graph, victim)
        except SpillError:
            break
    return graph


def machines() -> st.SearchStrategy:
    """Machine configurations the differential suites sweep.

    Includes the single-cluster degenerate clustered machine -- dual
    allocation with exactly one subfile -- alongside the paper machines.
    """
    return st.sampled_from(
        (
            paper_config(3),
            paper_config(6),
            clustered_config(1, 3),
            clustered_config(4, 3),
        )
    )


__all__ = ["dependence_graphs", "high_pressure_graphs", "machines"]
