"""Unit tests for lifetime analysis (paper, Table 2)."""

import pytest

from repro.ir.builder import LoopBuilder
from repro.regalloc.lifetimes import Lifetime, lifetimes, total_lifetime
from repro.sched.modulo import modulo_schedule


class TestPaperTable2:
    """The example loop's lifetimes: 13, 7, 6, 6, 6, 4; sum 42."""

    def test_lengths(self, example_schedule):
        lts = lifetimes(example_schedule)
        named = {
            example_schedule.graph.op(i).name: lt.length
            for i, lt in lts.items()
        }
        assert named == {
            "L1": 13, "L2": 7, "M3": 6, "A4": 6, "M5": 6, "A6": 4,
        }

    def test_sum_is_42(self, example_schedule):
        assert total_lifetime(lifetimes(example_schedule)) == 42

    def test_store_defines_no_lifetime(self, example_schedule):
        lts = lifetimes(example_schedule)
        names = {example_schedule.graph.op(i).name for i in lts}
        assert "S7" not in names

    def test_lifetime_spans_producer_to_last_consumer_finish(
        self, example_schedule
    ):
        """L1 is consumed by M3 (early) and A6 (late, latency 3)."""
        graph = example_schedule.graph
        ids = {op.name: op.op_id for op in graph.operations}
        lts = lifetimes(example_schedule)
        l1 = lts[ids["L1"]]
        assert l1.start == example_schedule.time_of(ids["L1"])
        assert l1.end == example_schedule.time_of(ids["A6"]) + 3


class TestGeneral:
    def test_unconsumed_value_lives_until_writeback(self, paper_l3):
        b = LoopBuilder()
        x = b.load("x")
        dead = b.mul(x, "c")  # no consumer
        b.store(x, "y")
        loop = b.build()
        schedule = modulo_schedule(loop.graph, paper_l3)
        lts = lifetimes(schedule)
        lt = lts[dead.op_id]
        assert lt.length == 3  # multiplier latency

    def test_carried_consumer_extends_by_distance_times_ii(self, paper_l6):
        b = LoopBuilder()
        ph = b.placeholder()
        s = b.add(ph, b.load("x"))
        b.bind(ph, s, distance=1)
        b.store(s, "y")
        schedule = modulo_schedule(b.build().graph, paper_l6)
        lts = lifetimes(schedule)
        lt = lts[s.op_id]
        # s consumes itself one iteration later: end >= start + II + latency.
        assert lt.end >= lt.start + schedule.ii
        assert lt.length >= schedule.ii

    def test_lifetime_validation(self):
        with pytest.raises(ValueError):
            Lifetime(0, 5, 5)
        with pytest.raises(ValueError):
            Lifetime(0, 5, 3)

    def test_shifted(self):
        lt = Lifetime(1, 2, 6)
        moved = lt.shifted(10)
        assert (moved.start, moved.end, moved.length) == (12, 16, 4)
