"""Unit tests for wands-only first-fit allocation."""

import pytest

from repro.regalloc.firstfit import (
    AllocationError,
    PlacedLifetime,
    first_fit,
    registers_required,
    verify_disjoint,
)
from repro.regalloc.lifetimes import Lifetime, lifetimes


class TestBasicPacking:
    def test_ii_one_packs_to_sum_of_lengths(self):
        lts = [Lifetime(0, 0, 5), Lifetime(1, 0, 3), Lifetime(2, 1, 4)]
        result = first_fit(lts, ii=1)
        verify_disjoint(result.placements.values())
        assert result.registers_required == 5 + 3 + 3

    def test_disjoint_intervals_need_no_shift(self):
        lts = [Lifetime(0, 0, 3), Lifetime(1, 5, 8)]
        result = first_fit(lts, ii=2)
        assert result.placements[1].shift == 0
        assert result.registers_required == 4  # span [0, 8) over II=2

    def test_overlap_forces_shift(self):
        lts = [Lifetime(0, 0, 4), Lifetime(1, 1, 3)]
        result = first_fit(lts, ii=2)
        assert result.placements[1].shift >= 2  # jump past [0, 4)

    def test_empty_allocation(self):
        result = first_fit([], ii=3)
        assert result.registers_required == 0

    def test_fill_gap_between_intervals(self):
        # [0,4) and [10,14) placed; a [0,2) lifetime fits at shift*2 in [4,10).
        lts = [Lifetime(0, 0, 4), Lifetime(1, 10, 14), Lifetime(2, 0, 2)]
        result = first_fit(lts, ii=2)
        verify_disjoint(result.placements.values())
        p = result.placements[2]
        assert 4 <= p.start and p.end <= 10

    def test_invalid_ii(self):
        with pytest.raises(AllocationError):
            first_fit([], ii=0)

    def test_duplicate_op_rejected(self):
        with pytest.raises(AllocationError):
            first_fit([Lifetime(0, 0, 2), Lifetime(0, 1, 3)], ii=1)


class TestFixedPlacements:
    def test_locals_avoid_fixed_globals(self):
        globals_ = first_fit([Lifetime(0, 0, 13)], ii=1)
        locals_ = first_fit(
            [Lifetime(1, 0, 6)], ii=1, fixed=tuple(globals_.placements.values())
        )
        merged = globals_.merged_with(locals_)
        verify_disjoint(merged.placements.values())
        assert merged.registers_required == 19

    def test_fixed_with_different_ii_rejected(self):
        fixed = PlacedLifetime(Lifetime(0, 0, 4), 0, ii=2)
        with pytest.raises(AllocationError):
            first_fit([Lifetime(1, 0, 2)], ii=3, fixed=(fixed,))

    def test_merge_duplicate_rejected(self):
        a = first_fit([Lifetime(0, 0, 2)], ii=1)
        with pytest.raises(AllocationError):
            a.merged_with(a)

    def test_merge_ii_mismatch_rejected(self):
        a = first_fit([Lifetime(0, 0, 2)], ii=1)
        b = first_fit([Lifetime(1, 0, 2)], ii=2)
        with pytest.raises(AllocationError):
            a.merged_with(b)


class TestRegistersRequired:
    def test_span_rounding(self):
        placements = [
            PlacedLifetime(Lifetime(0, 0, 5), 0, ii=3),
            PlacedLifetime(Lifetime(1, 5, 8), 0, ii=3),
        ]
        assert registers_required(placements, ii=3) == 3  # ceil(8/3)

    def test_span_ignores_leading_gap(self):
        placements = [PlacedLifetime(Lifetime(0, 30, 36), 0, ii=3)]
        assert registers_required(placements, ii=3) == 2

    def test_verify_disjoint_catches_overlap(self):
        placements = [
            PlacedLifetime(Lifetime(0, 0, 5), 0, ii=1),
            PlacedLifetime(Lifetime(1, 4, 8), 0, ii=1),
        ]
        with pytest.raises(AllocationError, match="overlap"):
            verify_disjoint(placements)


class TestPaperNumbers:
    """The allocation numbers of Section 4.1 fall out of first-fit."""

    def test_unified_42(self, example_schedule):
        lts = lifetimes(example_schedule)
        result = first_fit(lts.values(), example_schedule.ii)
        assert result.registers_required == 42

    def test_dual_29_via_fixed_globals(self, example_schedule):
        graph = example_schedule.graph
        ids = {op.name: op.op_id for op in graph.operations}
        lts = lifetimes(example_schedule)
        globals_ = first_fit([lts[ids["L1"]]], 1)
        right = first_fit(
            [lts[ids[n]] for n in ("A4", "M5", "A6")],
            1,
            fixed=tuple(globals_.placements.values()),
        )
        merged = globals_.merged_with(right)
        assert merged.registers_required == 29
