"""Unit tests for the MaxLive lower bound."""

from repro.regalloc.lifetimes import Lifetime, lifetimes
from repro.regalloc.maxlive import average_live, live_at, live_profile, max_live


class TestLiveAt:
    def test_single_short_lifetime(self):
        lt = Lifetime(0, 0, 3)
        assert live_at(lt, 0, ii=4) == 1
        assert live_at(lt, 2, ii=4) == 1
        assert live_at(lt, 3, ii=4) == 0

    def test_lifetime_longer_than_ii_overlaps_itself(self):
        lt = Lifetime(0, 0, 10)
        # II = 4: instances from iterations k with 0 <= c + 4k < 10.
        assert live_at(lt, 0, ii=4) == 3  # k = 0, 1, 2
        assert live_at(lt, 2, ii=4) == 2  # k = 0, 1

    def test_ii_one_equals_length(self):
        lt = Lifetime(0, 5, 18)
        assert live_at(lt, 0, ii=1) == 13

    def test_offset_start(self):
        lt = Lifetime(0, 7, 16)  # length 9, II=4
        # c=3: instances k with 7 <= 3+4k < 16 -> k in {1, 2, 3}.
        assert live_at(lt, 3, ii=4) == 3
        # c=0: instances k with 7 <= 4k < 16 -> k in {2, 3}.
        assert live_at(lt, 0, ii=4) == 2


class TestProfiles:
    def test_profile_length_is_ii(self):
        lts = [Lifetime(0, 0, 3), Lifetime(1, 1, 5)]
        assert len(live_profile(lts, 4)) == 4

    def test_example_loop_maxlive_is_42(self, example_schedule):
        lts = lifetimes(example_schedule)
        assert max_live(lts.values(), example_schedule.ii) == 42

    def test_maxlive_empty(self):
        assert max_live([], 4) == 0

    def test_average_live(self):
        lts = [Lifetime(0, 0, 4), Lifetime(1, 0, 8)]
        assert average_live(lts, 4) == 3.0

    def test_maxlive_at_least_average(self):
        lts = [Lifetime(0, 0, 3), Lifetime(1, 2, 9), Lifetime(2, 5, 6)]
        for ii in (1, 2, 3, 5):
            assert max_live(lts, ii) >= average_live(lts, ii) - 1e-9
