"""Unit tests for the unified-allocation entry point."""

from repro.regalloc.allocation import allocate_unified
from repro.regalloc.maxlive import max_live
from repro.sched.modulo import modulo_schedule
from repro.workloads.kernels import all_kernels


class TestAllocateUnified:
    def test_example_loop(self, example_schedule):
        alloc = allocate_unified(example_schedule)
        assert alloc.registers_required == 42
        assert alloc.max_live == 42
        assert alloc.ii == 1

    def test_first_fit_close_to_maxlive_on_kernels(self, paper_l6):
        """First-fit must stay close to the MaxLive lower bound.

        Rau et al. report wands-only allocation within a register or two of
        the bound on most loops; shift quantization to multiples of II can
        cost a few more on wide loops, so allow ~15% slack.
        """
        for loop in all_kernels():
            schedule = modulo_schedule(loop.graph, paper_l6)
            alloc = allocate_unified(schedule)
            assert alloc.registers_required >= alloc.max_live
            assert alloc.registers_required <= round(alloc.max_live * 1.15) + 2

    def test_lifetimes_cover_all_values(self, example_schedule):
        alloc = allocate_unified(example_schedule)
        value_ids = {op.op_id for op in example_schedule.graph.values()}
        assert set(alloc.lifetimes) == value_ids
        assert set(alloc.result.placements) == value_ids

    def test_maxlive_recorded(self, paper_l3):
        for loop in all_kernels()[:5]:
            schedule = modulo_schedule(loop.graph, paper_l3)
            alloc = allocate_unified(schedule)
            assert alloc.max_live == max_live(
                alloc.lifetimes.values(), schedule.ii
            )
