"""Golden-text tests for the Markdown/HTML document renderers."""

import pytest

from repro.analysis.reporting import BarChart, Table
from repro.report.document import (
    Document,
    Pre,
    Section,
    Text,
    render_html,
    render_markdown,
)
from repro.report.provenance import Provenance


@pytest.fixture
def provenance():
    return Provenance(
        git="abc1234",
        source="deadbeef0123",
        python="3.12.0",
        platform="linux (x86_64)",
        n_loops=50,
        spill_loops=None,
        suite_seed=20061995,
        engine_jobs=700,
        cache_summary="10 hits / 5 misses (66.7% hit rate)",
        wall_seconds=1.5,
    )


@pytest.fixture
def document(provenance):
    table = Table.build(
        ["model", "registers"],
        [("unified", 42), ("swapped", 23)],
        title="Requirements",
    )
    chart = BarChart(
        title="Perf",
        series=("ideal", "unified"),
        groups=(("L6,R32", (1.0, 0.81)),),
        max_value=1.0,
    )
    return Document(
        title="Repro <report>",
        intro="All checks pass.",
        sections=(
            Section("Example & more", (Text("Some prose."), table)),
            Section("Charts", (Pre("kernel code", title="Figure 4"), chart)),
        ),
        provenance=provenance,
    )


GOLDEN_MARKDOWN_HEAD = """\
# Repro <report>

All checks pass.

## Contents

- [Example & more](#example--more)
- [Charts](#charts)

## Example & more

Some prose.

**Requirements**

| model | registers |
| --- | --- |
| unified | 42 |
| swapped | 23 |
"""


class TestMarkdown:
    def test_golden_head(self, document):
        text = render_markdown(document)
        assert text.startswith(GOLDEN_MARKDOWN_HEAD)

    def test_pre_block_fenced(self, document):
        text = render_markdown(document)
        assert "**Figure 4**\n\n```\nkernel code\n```" in text

    def test_chart_rendered_as_ascii(self, document):
        text = render_markdown(document)
        assert "L6,R32  ideal" in text

    def test_provenance_footer(self, document):
        text = render_markdown(document)
        assert "## Provenance" in text
        assert "| git revision | `abc1234` |" in text
        assert "| cache | `10 hits / 5 misses (66.7% hit rate)` |" in text
        assert "| suite | `50 loops, seed 20061995` |" in text

    def test_no_timestamp_without_stamp(self, document):
        assert "generated" not in render_markdown(document)


class TestHtml:
    def test_self_contained(self, document):
        html = render_html(document)
        assert html.startswith("<!DOCTYPE html>")
        assert "<style>" in html  # inline stylesheet
        # No external fetches: no scripts, no links, no http(s) src/href
        # (the only URL allowed is the SVG xmlns declaration).
        assert "<script" not in html
        assert "<link" not in html
        assert 'src="http' not in html and 'href="http' not in html

    def test_title_escaped(self, document):
        html = render_html(document)
        assert "Repro &lt;report&gt;" in html
        assert "<report>" not in html

    def test_sections_and_nav(self, document):
        html = render_html(document)
        assert '<section id="example--more">' in html
        assert '<a href="#charts">' in html

    def test_table_and_chart_markup(self, document):
        html = render_html(document)
        assert "<caption>Requirements</caption>" in html
        assert '<svg class="chart"' in html
        assert 'class="series-0"' in html

    def test_dark_scheme_present(self, document):
        html = render_html(document)
        assert "prefers-color-scheme: dark" in html

    def test_provenance_footer(self, document):
        html = render_html(document)
        assert "<footer>" in html
        assert "<code>deadbeef0123</code>" in html


class TestProvenanceRows:
    def test_spill_subset_all(self, provenance):
        rows = dict(provenance.rows())
        assert rows["spill subset"] == "all loops"

    def test_optional_timestamp(self, provenance):
        stamped = Provenance(
            **{
                **provenance.__dict__,
                "generated_at": "2026-01-01 00:00 UTC",
            }
        )
        assert ("generated", "2026-01-01 00:00 UTC") in stamped.rows()


class TestAnchors:
    def test_github_style_slugs(self):
        # Punctuation drops, spaces become hyphens, hyphens survive --
        # matching how forges anchor rendered Markdown headings.
        cases = {
            "Table 1 -- allocatable loops": "table-1----allocatable-loops",
            "Section 4.1 example (Tables 2-4)": (
                "section-41-example-tables-2-4"
            ),
            "Figure 8 -- performance": "figure-8----performance",
        }
        for title, slug in cases.items():
            assert Section(title, ()).anchor == slug
