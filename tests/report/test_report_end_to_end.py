"""End-to-end: generate_report and the ``repro report`` CLI."""

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.engine.pool import serial_engine
from repro.report import generate_report

SRC = str(Path(__file__).resolve().parents[2] / "src")


@pytest.fixture(scope="module")
def result(tmp_path_factory):
    out = tmp_path_factory.mktemp("artifact")
    return generate_report(
        n_loops=20,
        spill_loops=10,
        engine=serial_engine(),
        fmt="html",
        out_dir=out,
        stamp=False,
    )


class TestGenerateReport:
    def test_reproduces_at_quick_scale(self, result):
        assert result.ok, result.summary()

    def test_writes_single_artifact(self, result):
        assert result.path is not None and result.path.name == "report.html"
        assert result.path.read_text() == result.text

    def test_artifact_contains_every_section(self, result):
        for needle in (
            "Paper-delta validation",
            "Section 4.1 example",
            "Table 1",
            "Figure 6",
            "Figure 7",
            "Figure 8",
            "Figure 9",
            "cost model",
            "Provenance",
        ):
            assert needle in result.text, needle

    def test_artifact_contains_delta_and_charts(self, result):
        assert "example-unified-42" in result.text
        assert "<svg" in result.text
        assert 'class="delta-ok"' in result.text

    def test_unstamped_render_is_deterministic(self, result):
        again = generate_report(
            n_loops=20,
            spill_loops=10,
            engine=serial_engine(),
            fmt="html",
            out_dir=None,
            stamp=False,
        )
        # Wall-clock timings differ run to run; everything else must not.
        def stable(text: str) -> str:
            import re

            return re.sub(r"\d+\.\d+s", "Xs", text)

        assert stable(again.text) == stable(result.text)

    def test_check_only_run_writes_nothing(self, tmp_path):
        result = generate_report(
            n_loops=6,
            engine=serial_engine(),
            out_dir=None,
            stamp=False,
        )
        assert result.path is None and result.text

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError, match="unknown format"):
            generate_report(n_loops=6, fmt="pdf", out_dir=None)

    def test_markdown_format(self, tmp_path):
        result = generate_report(
            n_loops=6,
            spill_loops=4,
            engine=serial_engine(),
            fmt="md",
            out_dir=tmp_path,
            stamp=False,
        )
        assert result.path.name == "report.md"
        assert result.text.startswith("# Non-Consistent Dual Register")


def _run_cli(*args: str, cache_dir: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "repro", "report", *args],
        capture_output=True,
        text=True,
        timeout=300,
        env={
            **os.environ,
            "PYTHONPATH": SRC,
            "REPRO_CACHE_DIR": cache_dir,
        },
    )


class TestCli:
    def test_check_passes_at_quick_scale(self, tmp_path):
        completed = _run_cli(
            "--loops",
            "20",
            "--spill-loops",
            "10",
            "--check",
            "--workers",
            "0",
            cache_dir=str(tmp_path / "cache"),
        )
        assert completed.returncode == 0, completed.stderr
        assert "gated expectations pass" in completed.stdout
        # --check without --out writes no artifact directory.
        assert not (Path.cwd() / "report").exists() or True

    def test_artifact_written_to_out(self, tmp_path):
        out = tmp_path / "artifact"
        completed = _run_cli(
            "--loops",
            "12",
            "--spill-loops",
            "6",
            "--format",
            "html",
            "--out",
            str(out),
            "--workers",
            "0",
            cache_dir=str(tmp_path / "cache"),
        )
        assert completed.returncode == 0, completed.stderr
        assert (out / "report.html").exists()
        assert str(out / "report.html") in completed.stdout
