"""The expectation registry: integrity, evaluation, and gating."""

import pytest

from repro.engine.pool import serial_engine
from repro.experiments.runner import run_suite
from repro.report.expected import (
    EXPECTATIONS,
    Delta,
    Expectation,
    evaluate_expectations,
    failed_gates,
)

VALID_SECTIONS = {
    "example",
    "table1",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "cost",
}


@pytest.fixture(scope="module")
def suite():
    return run_suite(20, spill_loops=10, engine=serial_engine())


@pytest.fixture(scope="module")
def deltas(suite):
    return evaluate_expectations(suite)


class TestRegistryIntegrity:
    def test_keys_unique(self):
        keys = [e.key for e in EXPECTATIONS]
        assert len(keys) == len(set(keys))

    def test_sections_valid(self):
        assert {e.section for e in EXPECTATIONS} <= VALID_SECTIONS

    def test_kinds_complete(self):
        for e in EXPECTATIONS:
            if e.kind == "value":
                assert e.extract is not None and e.paper_value is not None
            else:
                assert e.kind == "trend" and e.holds is not None

    def test_deterministic_anchors_have_zero_tolerance(self):
        for e in EXPECTATIONS:
            if e.section in ("example", "cost") and e.kind == "value":
                assert e.tolerance == 0.0, e.key

    def test_ungated_rows_explain_themselves(self):
        for e in EXPECTATIONS:
            if not e.gate:
                assert e.note, f"{e.key}: gate=False needs a note"

    def test_value_expectation_requires_extract(self):
        with pytest.raises(ValueError):
            Expectation(
                key="bad",
                section="example",
                paper_ref="x",
                description="x",
                kind="value",
            )

    def test_trend_expectation_requires_holds(self):
        with pytest.raises(ValueError):
            Expectation(
                key="bad",
                section="example",
                paper_ref="x",
                description="x",
                kind="trend",
            )


class TestEvaluation:
    def test_every_expectation_evaluates(self, deltas):
        assert len(deltas) == len(EXPECTATIONS)

    def test_all_gates_pass_at_quick_scale(self, deltas):
        assert failed_gates(deltas) == []

    def test_deterministic_anchors_exact(self, deltas):
        by_key = {d.expectation.key: d for d in deltas}
        assert by_key["example-unified-42"].reproduced == 42.0
        assert by_key["example-partitioned-29"].reproduced == 29.0
        assert by_key["example-swapped-23"].reproduced == 23.0
        assert by_key["example-ii"].reproduced == 1.0

    def test_informational_misses_report_as_info(self, deltas):
        for delta in deltas:
            if not delta.expectation.gate:
                assert delta.status in ("info", "ok")

    def test_delta_displays(self, deltas):
        for delta in deltas:
            assert delta.expected_display
            assert delta.reproduced_display
            if delta.expectation.kind == "trend":
                assert delta.delta_display == "--"
            else:
                assert delta.delta_display[0] in "+-"


class TestGating:
    def test_failing_value_gate_is_caught(self, suite):
        impossible = Expectation(
            key="impossible",
            section="example",
            paper_ref="nowhere",
            description="a value no run can reproduce",
            extract=lambda s: 0.0,
            paper_value=1e6,
        )
        deltas = evaluate_expectations(suite, [impossible])
        assert [d.expectation.key for d in failed_gates(deltas)] == [
            "impossible"
        ]

    def test_failing_ungated_check_never_fails_gate(self, suite):
        informational = Expectation(
            key="informational",
            section="example",
            paper_ref="nowhere",
            description="reported but not gated",
            extract=lambda s: 0.0,
            paper_value=1e6,
            gate=False,
            note="documented workload artifact",
        )
        deltas = evaluate_expectations(suite, [informational])
        assert failed_gates(deltas) == []
        assert deltas[0].status == "info"

    def test_failing_trend_gate_is_caught(self, suite):
        broken = Expectation(
            key="broken-trend",
            section="figure8",
            paper_ref="nowhere",
            description="a claim that cannot hold",
            kind="trend",
            holds=lambda s: False,
        )
        deltas = evaluate_expectations(suite, [broken])
        assert len(failed_gates(deltas)) == 1
        assert deltas[0].reproduced_display == "violated"


class TestDeltaStatus:
    def test_status_strings(self):
        e = Expectation(
            key="k",
            section="example",
            paper_ref="r",
            description="d",
            extract=lambda s: 1.0,
            paper_value=1.0,
        )
        assert Delta(e, 1.0, True).status == "ok"
        assert Delta(e, 2.0, False).status == "fail"
        assert Delta(e, 2.0, None).status == "info"
