"""Unit tests for memory-traffic metrics."""

import pytest

from repro.core.models import Model
from repro.spill.spiller import evaluate_loop, spill_value
from repro.spill.traffic import (
    aggregate_density,
    aggregate_traffic,
    loop_density,
    memory_ops,
    spill_memory_ops,
)
from repro.workloads.kernels import example_loop, make_kernel


class TestCounting:
    def test_memory_ops(self):
        graph = example_loop().graph
        assert memory_ops(graph) == 3  # L1, L2, S7
        assert spill_memory_ops(graph) == 0

    def test_spill_ops_counted(self):
        graph = example_loop().graph
        named = {op.name: op.op_id for op in graph.operations}
        spilled = spill_value(graph, named["L1"])
        assert memory_ops(spilled) == 6
        assert spill_memory_ops(spilled) == 3


class TestAggregates:
    def test_density_weighted_by_cycles(self, paper_l3):
        evs = [
            evaluate_loop(example_loop(), paper_l3, Model.UNIFIED),
            evaluate_loop(make_kernel("daxpy"), paper_l3, Model.UNIFIED),
        ]
        density = aggregate_density(evs)
        accesses = sum(
            ev.loop.trip_count * ev.memory_ops_per_iteration for ev in evs
        )
        capacity = sum(ev.cycles * 2 for ev in evs)
        assert density == pytest.approx(accesses / capacity)
        assert 0.0 < density <= 1.0

    def test_aggregate_traffic(self, paper_l3):
        ev = evaluate_loop(example_loop(), paper_l3, Model.UNIFIED)
        assert aggregate_traffic([ev]) == ev.loop.trip_count * 3

    def test_loop_density_matches_evaluation(self, paper_l3):
        ev = evaluate_loop(example_loop(), paper_l3, Model.UNIFIED)
        assert loop_density(ev) == ev.traffic_density

    def test_empty_aggregate(self):
        assert aggregate_density([]) == 0.0
        assert aggregate_traffic([]) == 0

    def test_spilling_raises_traffic(self, paper_l6):
        """Spill code always adds accesses; density may stay flat when the
        II inflates along with the traffic (the paper's L6/R32 observation),
        so the monotone quantity is total traffic."""
        free = evaluate_loop(example_loop(), paper_l6, Model.UNIFIED)
        tight = evaluate_loop(
            example_loop(), paper_l6, Model.UNIFIED, register_budget=12
        )
        assert aggregate_traffic([tight]) > aggregate_traffic([free])
