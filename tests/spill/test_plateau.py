"""Tests for the spiller's plateau detection (issue-burst-bound loops)."""

import pytest

from repro.core.models import Model
from repro.machine.config import paper_config
from repro.spill.spiller import evaluate_loop
from repro.workloads.synthetic import SyntheticConfig, generate_loop


@pytest.fixture(scope="module")
def wide_loop():
    """A wide, shallow loop whose producers issue in a dense burst: spilling
    everything still leaves more short lifetimes live at once than a small
    file can hold, and raising the II does not spread the burst."""
    cfg = SyntheticConfig(
        size_mu=None,
        size_classes=(
            __import__(
                "repro.workloads.synthetic", fromlist=["SizeClass"]
            ).SizeClass("wide", 1.0, 60, 60),
        ),
        chain_bias=0.05,
        recurrence_prob=0.0,
    )
    return generate_loop(0, config=cfg)


class TestPlateauDetection:
    def test_unfit_reported_not_hung(self, wide_loop):
        machine = paper_config(6)
        ev = evaluate_loop(
            wide_loop, machine, Model.UNIFIED, register_budget=8
        )
        assert not ev.fits
        # Plateau detection must kick in well before the round cap.
        assert ev.ii_increases < 200

    def test_increase_ii_strategy_also_detects_plateau(self, wide_loop):
        machine = paper_config(6)
        ev = evaluate_loop(
            wide_loop,
            machine,
            Model.UNIFIED,
            register_budget=8,
            pressure_strategy="increase_ii",
        )
        assert not ev.fits
        assert ev.spilled_values == 0
        assert ev.ii_increases < 200

    def test_generous_budget_still_fits(self, wide_loop):
        machine = paper_config(6)
        ev = evaluate_loop(
            wide_loop, machine, Model.UNIFIED, register_budget=256
        )
        assert ev.fits
        assert ev.spilled_values == 0

    def test_best_effort_schedule_still_valid(self, wide_loop):
        machine = paper_config(6)
        ev = evaluate_loop(
            wide_loop, machine, Model.UNIFIED, register_budget=8
        )
        ev.schedule.verify()
        assert ev.requirement.registers > 8
