"""Edge-case tests for spill-code insertion."""

import pytest

from repro.ir.builder import LoopBuilder
from repro.ir.operation import OpType, ValueRef
from repro.ir.validate import validate_graph
from repro.sched.modulo import modulo_schedule
from repro.sim.executor import execute_kernel
from repro.regalloc.allocation import allocate_unified
from repro.spill.spiller import spill_value


class TestReloadSharing:
    def test_double_use_by_one_consumer_shares_a_reload(self):
        b = LoopBuilder()
        x = b.load("x")
        sq = b.mul(x, x, name="sq")  # consumes x twice at distance 0
        b.store(sq, "y")
        graph = b.build().graph
        spilled = spill_value(graph, x.op_id)
        reloads = [
            op
            for op in spilled.operations
            if op.is_spill and op.optype is OpType.LOAD
        ]
        assert len(reloads) == 1
        sq_op = next(op for op in spilled.operations if op.name == "sq")
        producers = {o.producer for o in sq_op.value_operands()}
        assert producers == {reloads[0].op_id}

    def test_distinct_distances_get_distinct_reloads(self):
        b = LoopBuilder()
        ph1 = b.placeholder()
        ph2 = b.placeholder()
        u = b.load("u")
        t = b.add(ph1, u, name="t")
        w = b.add(ph2, t, name="w")
        b.bind(ph1, t, distance=1)
        b.bind(ph2, t, distance=2)
        b.store(w, "w")
        graph = b.build().graph
        spilled = spill_value(graph, t.op_id)
        # t's consumers: itself at distance 1 (ph1), w at distance 2 (ph2)
        # and w again directly at distance 0 -> three distinct reloads.
        reload_edges = spilled.extra_edges()
        assert sorted(e.distance for e in reload_edges) == [0, 1, 2]
        validate_graph(spilled)

    def test_two_consumers_two_reloads(self):
        b = LoopBuilder()
        x = b.load("x")
        a = b.add(x, "c0")
        m = b.mul(x, "c1")
        b.store(a, "a")
        b.store(m, "m")
        graph = b.build().graph
        spilled = spill_value(graph, x.op_id)
        reloads = [
            op
            for op in spilled.operations
            if op.is_spill and op.optype is OpType.LOAD
        ]
        assert len(reloads) == 2


class TestSpilledSemantics:
    def test_recurrence_spill_roundtrip_simulates(self, paper_l3):
        """Spilling a loop-carried value routes the recurrence through
        memory with the right distance -- verified functionally."""
        b = LoopBuilder()
        ph = b.placeholder()
        s = b.add(ph, b.load("x"), name="s")
        b.bind(ph, s, distance=1)
        b.store(s, "out")
        graph = b.build().graph
        spilled = spill_value(graph, s.op_id)
        schedule = modulo_schedule(spilled, paper_l3)
        execute_kernel(schedule, allocate_unified(schedule), iterations=12)

    def test_double_spill_different_values(self, paper_l3):
        graph_source = LoopBuilder()
        x = graph_source.load("x")
        y = graph_source.load("y")
        t = graph_source.add(x, y)
        graph_source.store(graph_source.mul(t, "c"), "z")
        graph = graph_source.build().graph
        once = spill_value(graph, x.op_id)
        twice = spill_value(once, y.op_id)
        validate_graph(twice)
        schedule = modulo_schedule(twice, paper_l3)
        execute_kernel(schedule, allocate_unified(schedule), iterations=8)
