"""Unit tests for the naive spiller and the evaluation pipeline."""

import pytest

from repro.core.models import Model
from repro.ir.operation import OpType, ValueRef
from repro.ir.validate import validate_graph
from repro.sched.modulo import modulo_schedule
from repro.spill.spiller import (
    SpillError,
    evaluate_loop,
    pick_victim,
    spill_value,
    spillable_values,
)
from repro.workloads.kernels import example_loop, make_kernel


@pytest.fixture()
def graph():
    return example_loop().graph


@pytest.fixture()
def named(graph):
    return {op.name: op.op_id for op in graph.operations}


class TestSpillValue:
    def test_adds_store_and_loads(self, graph, named):
        spilled = spill_value(graph, named["L1"])  # consumers: M3, A6
        assert spilled.count(OpType.STORE) == graph.count(OpType.STORE) + 1
        assert spilled.count(OpType.LOAD) == graph.count(OpType.LOAD) + 2

    def test_consumers_rewired_to_reloads(self, graph, named):
        spilled = spill_value(graph, named["L1"])
        m3 = spilled.op(named["M3"])
        producers = [
            o.producer for o in m3.operands if isinstance(o, ValueRef)
        ]
        assert named["L1"] not in producers

    def test_spill_ops_marked(self, graph, named):
        spilled = spill_value(graph, named["M3"])
        new_ops = [op for op in spilled.operations if op.is_spill]
        assert len(new_ops) == 2  # one store + one reload (single consumer)
        assert all(op.symbol == "spill.M3" for op in new_ops)

    def test_memory_edge_connects_store_to_load(self, graph, named):
        spilled = spill_value(graph, named["M3"])
        extra = spilled.extra_edges()
        assert len(extra) == 1
        assert spilled.op(extra[0].src).optype is OpType.STORE
        assert spilled.op(extra[0].dst).optype is OpType.LOAD

    def test_spilled_graph_validates(self, graph, named):
        for name in ("L1", "M3", "A4"):
            validate_graph(spill_value(graph, named[name]))

    def test_spilled_value_lifetime_shrinks(self, graph, named, example_machine):
        from repro.regalloc.lifetimes import lifetimes

        spilled = spill_value(graph, named["L1"])
        schedule = modulo_schedule(spilled, example_machine)
        lts = lifetimes(schedule)
        # L1's only remaining consumer is the spill store (latency 1).
        assert lts[named["L1"]].length < 13

    def test_carried_consumer_distance_preserved(self, paper_l3):
        loop = make_kernel("dot_product")
        graph = loop.graph
        acc = next(op for op in graph.values() if op.name == "s")
        spilled = spill_value(graph, acc.op_id)
        validate_graph(spilled)
        edge = spilled.extra_edges()[0]
        assert edge.distance == 1  # the reduction distance moves to memory
        schedule = modulo_schedule(spilled, paper_l3)
        schedule.verify()

    def test_store_value_not_spillable(self, graph, named):
        with pytest.raises(SpillError):
            spill_value(graph, named["S7"])

    def test_unconsumed_value_not_spillable(self, paper_l3):
        from repro.ir.builder import LoopBuilder

        b = LoopBuilder()
        x = b.load("x")
        dead = b.mul(x, "c")
        b.store(x, "y")
        with pytest.raises(SpillError):
            spill_value(b.build(validate=False).graph, dead.op_id)


class TestVictimSelection:
    def test_longest_lifetime_selected(self, example_schedule, named):
        assert pick_victim(example_schedule) == named["L1"]  # lifetime 13

    def test_spilled_values_not_candidates(self, graph, named, example_machine):
        spilled = spill_value(graph, named["L1"])
        schedule = modulo_schedule(spilled, example_machine)
        assert named["L1"] not in spillable_values(spilled)
        assert pick_victim(schedule) != named["L1"]

    def test_no_candidates_returns_none(self, example_machine):
        from repro.ir.builder import LoopBuilder

        b = LoopBuilder()
        b.store(b.load("x"), "y")
        graph = b.build().graph
        schedule = modulo_schedule(graph, example_machine)
        # The load feeds only a (non-spill) store... still spillable.
        assert pick_victim(schedule) is not None


class TestEvaluateLoop:
    def test_no_budget_means_no_spill(self, paper_l6):
        ev = evaluate_loop(example_loop(), paper_l6, Model.UNIFIED)
        assert ev.spilled_values == 0
        assert ev.fits

    def test_ideal_ignores_budget(self, paper_l6):
        ev = evaluate_loop(
            example_loop(), paper_l6, Model.IDEAL, register_budget=4
        )
        assert ev.spilled_values == 0
        assert ev.fits

    @pytest.mark.parametrize("budget", [8, 16, 32])
    def test_budget_satisfied(self, paper_l6, budget):
        ev = evaluate_loop(
            example_loop(), paper_l6, Model.UNIFIED, register_budget=budget
        )
        assert ev.fits
        assert ev.requirement.registers <= budget
        ev.schedule.verify()

    def test_spilling_increases_memory_ops(self, paper_l6):
        free = evaluate_loop(example_loop(), paper_l6, Model.UNIFIED)
        tight = evaluate_loop(
            example_loop(), paper_l6, Model.UNIFIED, register_budget=12
        )
        assert (
            tight.memory_ops_per_iteration > free.memory_ops_per_iteration
        )
        assert tight.spill_ops_per_iteration > 0

    def test_dual_models_spill_less(self, paper_l6):
        unified = evaluate_loop(
            example_loop(), paper_l6, Model.UNIFIED, register_budget=16
        )
        swapped = evaluate_loop(
            example_loop(), paper_l6, Model.SWAPPED, register_budget=16
        )
        assert swapped.spilled_values <= unified.spilled_values
        assert swapped.ii <= unified.ii

    def test_cycles_and_density(self, paper_l6):
        ev = evaluate_loop(example_loop(), paper_l6, Model.UNIFIED)
        assert ev.cycles == ev.loop.trip_count * ev.ii
        expected = ev.memory_ops_per_iteration / (
            ev.ii * paper_l6.memory_bandwidth
        )
        assert ev.traffic_density == pytest.approx(expected)

    def test_mii_recorded(self, paper_l6):
        ev = evaluate_loop(example_loop(), paper_l6, Model.UNIFIED)
        # 3 memory ops over the paper machine's 2 load/store units.
        assert ev.mii == 2
        assert ev.ii >= ev.mii
