"""Tests for the generalized n-cluster non-consistent register file."""

import pytest

from repro.core.clustering import classify_values, scheduler_assignment
from repro.core.dualfile import allocate_dual, dual_max_live
from repro.core.swapping import greedy_swap
from repro.machine.config import clustered_config, paper_config
from repro.regalloc.allocation import allocate_unified
from repro.sched.modulo import modulo_schedule
from repro.sim.executor import execute_kernel
from repro.workloads.kernels import all_kernels
from repro.workloads.synthetic import generate_loop


@pytest.fixture(scope="module")
def four_cluster():
    return clustered_config(4, fp_latency=6)


class TestConfig:
    def test_pool_sizes_scale(self, four_cluster):
        assert four_cluster.units("adder") == 4
        assert four_cluster.units("mem") == 4
        assert four_cluster.n_clusters == 4

    def test_two_cluster_matches_paper_machine(self):
        two = clustered_config(2, fp_latency=3)
        paper = paper_config(3)
        assert [p.count for p in two.pools] == [p.count for p in paper.pools]
        assert two.n_clusters == paper.n_clusters

    def test_instance_partition(self, four_cluster):
        clusters = [
            four_cluster.cluster_of_instance("adder", i) for i in range(4)
        ]
        assert clusters == [0, 1, 2, 3]

    def test_invalid_cluster_count(self):
        from repro.machine.config import ConfigError

        with pytest.raises(ConfigError):
            clustered_config(0)


class TestClassification:
    def test_values_stored_only_in_consumer_clusters(self, four_cluster):
        loop = generate_loop(3)
        schedule = modulo_schedule(loop.graph, four_cluster)
        assignment = scheduler_assignment(schedule)
        classes = classify_values(schedule, assignment)
        for op in schedule.graph.values():
            clusters = classes.value_clusters[op.op_id]
            consumers = schedule.graph.consumers(op.op_id)
            if consumers:
                assert clusters == {
                    assignment[c.op_id] for c, _ in consumers
                }
            else:
                assert clusters == {assignment[op.op_id]}

    def test_local_ids_are_single_cluster_values(self, four_cluster):
        loop = generate_loop(12)
        schedule = modulo_schedule(loop.graph, four_cluster)
        classes = classify_values(schedule, scheduler_assignment(schedule))
        for cluster, ids in classes.local_ids.items():
            for op_id in ids:
                assert classes.value_clusters[op_id] == {cluster}


class TestAllocation:
    @pytest.mark.parametrize("index", range(8))
    def test_four_cluster_no_worse_than_two(self, index, four_cluster):
        """More clusters -> fewer values per subfile -> <= registers.

        (Schedules differ between machines, so compare against the unified
        requirement of the same schedule, which is always an upper bound.)
        """
        loop = generate_loop(index)
        schedule = modulo_schedule(loop.graph, four_cluster)
        unified = allocate_unified(schedule).registers_required
        dual = allocate_dual(schedule).registers_required
        assert dual <= unified

    @pytest.mark.parametrize("index", range(8))
    def test_file_allocations_disjoint(self, index, four_cluster):
        from repro.regalloc.firstfit import verify_disjoint

        loop = generate_loop(index)
        schedule = modulo_schedule(loop.graph, four_cluster)
        alloc = allocate_dual(schedule)
        for cluster in range(4):
            verify_disjoint(
                alloc.file_allocation(cluster).placements.values()
            )

    def test_shared_values_have_one_shift(self, four_cluster):
        loop = generate_loop(5)
        schedule = modulo_schedule(loop.graph, four_cluster)
        alloc = allocate_dual(schedule)
        for op_id, clusters in alloc.classes.value_clusters.items():
            for cluster in clusters:
                assert (
                    alloc.file_allocation(cluster).placements[op_id]
                    is alloc.placements[op_id]
                )

    def test_maxlive_bound_holds(self, four_cluster):
        loop = generate_loop(9)
        schedule = modulo_schedule(loop.graph, four_cluster)
        assignment = scheduler_assignment(schedule)
        assert dual_max_live(schedule, assignment) <= allocate_dual(
            schedule, assignment
        ).registers_required


class TestEndToEnd:
    @pytest.mark.parametrize("index", [0, 4, 11])
    def test_four_cluster_execution_verifies(self, index, four_cluster):
        loop = generate_loop(index)
        schedule = modulo_schedule(loop.graph, four_cluster)
        alloc = allocate_dual(schedule)
        report = execute_kernel(schedule, alloc, iterations=5)
        assert set(report.port_stats) == {
            f"subfile{c}" for c in range(4)
        }

    def test_swapping_works_across_four_clusters(self, four_cluster):
        # A wide kernel with enough parallel ops to give swap candidates.
        loop = max(all_kernels(), key=lambda l: l.size)
        schedule = modulo_schedule(loop.graph, four_cluster)
        result = greedy_swap(schedule)
        result.schedule.verify()
        assert result.estimate_after <= result.estimate_before
