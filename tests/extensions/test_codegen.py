"""Tests for prologue/kernel/epilogue code generation."""

import pytest

from repro.regalloc.mve import allocate_mve
from repro.sched.codegen import (
    code_size_comparison,
    emit_replicated,
    emit_rotating,
)
from repro.sched.modulo import modulo_schedule
from repro.workloads.kernels import all_kernels, example_loop
from repro.workloads.synthetic import generate_loop


class TestRotating:
    def test_exactly_ii_words(self, example_schedule):
        listing = emit_rotating(example_schedule)
        assert listing.words == example_schedule.ii == 1
        assert listing.kernel_copies == 1

    def test_all_ops_present_once(self, example_schedule):
        listing = emit_rotating(example_schedule)
        text = listing.render()
        for op in example_schedule.graph.operations:
            assert text.count(f" {op.name}@") == 1

    def test_stage_annotations(self, example_schedule):
        text = emit_rotating(example_schedule).render()
        assert "[13] S7" in text
        assert "[0] L1" in text


class TestReplicated:
    def test_sections_present(self, paper_l6):
        loop = example_loop()
        schedule = modulo_schedule(loop.graph, paper_l6)
        listing = emit_replicated(schedule)
        assert listing.section("prologue")
        assert listing.section("kernel")
        assert listing.section("epilogue")

    def test_kernel_periodicity(self, paper_l6):
        """Inside the kernel region every word repeats with period II, up to
        the instance-renaming suffix."""
        loop = example_loop()
        schedule = modulo_schedule(loop.graph, paper_l6)
        listing = emit_replicated(schedule)
        kernel = listing.section("kernel")
        ii = schedule.ii

        def strip(slots):
            return tuple(s.split("#")[0] for s in slots)

        for a, b in zip(kernel, kernel[ii:]):
            assert strip(a.slots) == strip(b.slots)

    def test_kernel_copies_match_mve_unroll(self, paper_l6):
        for loop in all_kernels()[:5]:
            schedule = modulo_schedule(loop.graph, paper_l6)
            listing = emit_replicated(schedule)
            unroll = allocate_mve(schedule).unroll_factor
            assert listing.kernel_copies == unroll
            assert len(listing.section("kernel")) == unroll * schedule.ii

    def test_prologue_and_epilogue_lengths(self, paper_l6):
        loop = example_loop()
        schedule = modulo_schedule(loop.graph, paper_l6)
        listing = emit_replicated(schedule)
        fill = (schedule.stage_count - 1) * schedule.ii
        assert len(listing.section("prologue")) == fill

    def test_every_issue_slot_emitted(self, paper_l6):
        loop = example_loop()
        schedule = modulo_schedule(loop.graph, paper_l6)
        listing = emit_replicated(schedule)
        n_iterations = (schedule.stage_count - 1) + listing.kernel_copies
        total_slots = sum(len(i.slots) for i in listing.instructions)
        assert total_slots == n_iterations * len(schedule.graph)

    def test_renaming_suffixes_cycle_through_unroll(self, paper_l6):
        loop = all_kernels()[1]
        schedule = modulo_schedule(loop.graph, paper_l6)
        listing = emit_replicated(schedule)
        suffixes = {
            slot.rsplit("#", 1)[1]
            for instr in listing.instructions
            for slot in instr.slots
        }
        assert suffixes == {f"r{i}" for i in range(listing.kernel_copies)}


class TestComparison:
    @pytest.mark.parametrize("index", range(6))
    def test_rotating_always_smaller(self, index, paper_l6):
        loop = generate_loop(index)
        schedule = modulo_schedule(loop.graph, paper_l6)
        sizes = code_size_comparison(schedule)
        assert sizes["rotating"] == schedule.ii
        assert sizes["replicated"] > sizes["rotating"]

    def test_deep_pipelines_replicate_more(self, paper_l3, paper_l6):
        """Higher latency -> more stages -> longer prologue/epilogue."""
        loop3 = example_loop()
        loop6 = example_loop()
        s3 = modulo_schedule(loop3.graph, paper_l3)
        s6 = modulo_schedule(loop6.graph, paper_l6)
        assert (
            code_size_comparison(s6)["replicated"]
            >= code_size_comparison(s3)["replicated"]
        )

    def test_render_smoke(self, example_schedule):
        text = emit_replicated(example_schedule).render()
        assert "prologue:" in text and "epilogue:" in text
