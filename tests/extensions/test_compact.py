"""Tests for the pressure-aware schedule-compaction post-pass."""

import pytest

from repro.core.dualfile import allocate_dual
from repro.core.swapping import greedy_swap
from repro.machine.config import paper_config
from repro.regalloc.allocation import allocate_unified
from repro.sched.compact import compact_schedule
from repro.sched.modulo import modulo_schedule
from repro.sim.executor import execute_kernel
from repro.workloads.kernels import make_kernel
from repro.workloads.synthetic import generate_loop


class TestInvariants:
    @pytest.mark.parametrize("index", range(6))
    def test_compacted_schedule_valid(self, index, paper_l6):
        loop = generate_loop(index)
        schedule = modulo_schedule(loop.graph, paper_l6)
        result = compact_schedule(schedule)
        result.schedule.verify()

    @pytest.mark.parametrize("index", range(6))
    def test_never_increases_maxlive(self, index, paper_l6):
        loop = generate_loop(index)
        schedule = modulo_schedule(loop.graph, paper_l6)
        result = compact_schedule(schedule)
        assert result.max_live_after <= result.max_live_before

    def test_ii_preserved(self, paper_l6):
        loop = generate_loop(7)
        schedule = modulo_schedule(loop.graph, paper_l6)
        result = compact_schedule(schedule)
        assert result.schedule.ii == schedule.ii

    def test_moves_recorded(self, paper_l6):
        loop = generate_loop(3)
        schedule = modulo_schedule(loop.graph, paper_l6)
        result = compact_schedule(schedule)
        assert result.n_moves == len(result.moves)
        for op_id, old, new in result.moves:
            assert old != new

    def test_zero_steps_is_identity(self, paper_l6):
        loop = generate_loop(3)
        schedule = modulo_schedule(loop.graph, paper_l6)
        result = compact_schedule(schedule, max_steps=0)
        assert result.n_moves == 0
        assert result.max_live_after == result.max_live_before


class TestEffectiveness:
    def test_reduces_pressure_on_eager_loads(self, paper_l6):
        """Loads issued far before their consumers are the classic waste;
        compaction must pull at least some of that slack in, aggregated
        over a handful of loops."""
        before = after = 0
        for index in range(8):
            loop = generate_loop(index)
            schedule = modulo_schedule(loop.graph, paper_l6)
            result = compact_schedule(schedule)
            before += result.max_live_before
            after += result.max_live_after
        assert after < before

    def test_composes_with_swapping(self, paper_l6):
        loop = make_kernel("state_equation")
        schedule = modulo_schedule(loop.graph, paper_l6)
        baseline = allocate_dual(
            greedy_swap(schedule).schedule,
            greedy_swap(schedule).assignment,
        ).registers_required
        compacted = compact_schedule(schedule).schedule
        swap = greedy_swap(compacted)
        combined = allocate_dual(
            swap.schedule, swap.assignment
        ).registers_required
        assert combined <= baseline + 1

    def test_compacted_allocation_executes(self, paper_l6):
        loop = generate_loop(5)
        schedule = modulo_schedule(loop.graph, paper_l6)
        compacted = compact_schedule(schedule).schedule
        execute_kernel(compacted, allocate_unified(compacted), iterations=5)
        swap = greedy_swap(compacted)
        alloc = allocate_dual(swap.schedule, swap.assignment)
        execute_kernel(swap.schedule, alloc, iterations=5)
