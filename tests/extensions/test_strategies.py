"""Tests for pressure strategies and spill victim policies (extensions)."""

import pytest

from repro.core.models import Model
from repro.machine.config import paper_config
from repro.spill.spiller import VICTIM_POLICIES, evaluate_loop, pick_victim
from repro.sched.modulo import modulo_schedule
from repro.workloads.kernels import example_loop, make_kernel


class TestIncreaseIiStrategy:
    def test_budget_met_without_spilling(self, paper_l6):
        ev = evaluate_loop(
            example_loop(),
            paper_l6,
            Model.UNIFIED,
            register_budget=16,
            pressure_strategy="increase_ii",
        )
        assert ev.fits
        assert ev.spilled_values == 0
        assert ev.ii_increases > 0
        assert ev.requirement.registers <= 16

    def test_no_extra_traffic(self, paper_l6):
        free = evaluate_loop(example_loop(), paper_l6, Model.UNIFIED)
        constrained = evaluate_loop(
            example_loop(),
            paper_l6,
            Model.UNIFIED,
            register_budget=16,
            pressure_strategy="increase_ii",
        )
        assert (
            constrained.memory_ops_per_iteration
            == free.memory_ops_per_iteration
        )

    def test_strategy_tradeoff(self, paper_l6):
        """Spilling trades memory traffic for a (hopefully) lower II;
        increasing the II trades cycles for zero extra traffic.

        Note an honest deviation from the paper's Section 5.4 expectation
        ("rescheduling would produce an extremely inefficient code"): with
        the *naive* per-consumer-reload spiller on a 2-port machine, the
        spill traffic itself often inflates the memory-bound II past what
        the II-increase strategy needs -- exactly why the paper calls for
        better spill heuristics.  The A3 ablation benchmark quantifies this.
        """
        spill = evaluate_loop(
            make_kernel("state_equation"),
            paper_l6,
            Model.UNIFIED,
            register_budget=12,
        )
        increase = evaluate_loop(
            make_kernel("state_equation"),
            paper_l6,
            Model.UNIFIED,
            register_budget=12,
            pressure_strategy="increase_ii",
        )
        assert spill.fits and increase.fits
        assert spill.spilled_values > 0 and increase.spilled_values == 0
        assert (
            spill.memory_ops_per_iteration
            > increase.memory_ops_per_iteration
        )

    def test_unknown_strategy_rejected(self, paper_l6):
        with pytest.raises(ValueError, match="pressure strategy"):
            evaluate_loop(
                example_loop(),
                paper_l6,
                Model.UNIFIED,
                register_budget=16,
                pressure_strategy="hope",
            )


class TestVictimPolicies:
    def test_policies_enumerated(self):
        # The paper's policy leads; the pipeline registry adds alternatives.
        assert VICTIM_POLICIES[0] == "longest"
        assert {"longest", "most_registers", "first"} <= set(VICTIM_POLICIES)
        assert {"most_consumers", "least_traffic"} <= set(VICTIM_POLICIES)

    def test_all_policies_reach_budget(self, paper_l6):
        loop = make_kernel("state_equation")
        for policy in VICTIM_POLICIES:
            ev = evaluate_loop(
                loop,
                paper_l6,
                Model.UNIFIED,
                register_budget=16,
                victim_policy=policy,
            )
            assert ev.fits, policy
            assert ev.requirement.registers <= 16

    def test_first_picks_lowest_id(self, example_schedule):
        assert pick_victim(example_schedule, policy="first") == min(
            op.op_id
            for op in example_schedule.graph.values()
            if example_schedule.graph.consumers(op.op_id)
        )

    def test_most_registers_equals_longest_at_ii_one(self, example_schedule):
        # With II = 1, ceil(lifetime / II) == lifetime: same ranking.
        assert pick_victim(
            example_schedule, policy="most_registers"
        ) == pick_victim(example_schedule, policy="longest")

    def test_unknown_policy_rejected(self, example_schedule):
        with pytest.raises(ValueError, match="victim policy"):
            pick_victim(example_schedule, policy="random")

    def test_policies_differ_at_larger_ii(self, paper_l6):
        """'longest' ignores the II quantization that 'most_registers'
        accounts for; at II > 1 they may rank values differently."""
        loop = make_kernel("state_equation")
        schedule = modulo_schedule(loop.graph, paper_l6, min_ii=4)
        a = pick_victim(schedule, policy="longest")
        b = pick_victim(schedule, policy="most_registers")
        assert a is not None and b is not None
