"""Tests for the swap-pass move extension (cluster-aware placement)."""

import pytest

from repro.core.dualfile import allocate_dual
from repro.core.swapping import greedy_swap
from repro.machine.config import example_config, paper_config
from repro.sched.modulo import modulo_schedule
from repro.sim.executor import execute_kernel
from repro.workloads.kernels import all_kernels, make_kernel
from repro.workloads.synthetic import generate_loop


class TestMoves:
    def test_moves_never_hurt_the_estimate(self, paper_l6):
        for loop in all_kernels()[:10]:
            schedule = modulo_schedule(loop.graph, paper_l6)
            plain = greedy_swap(schedule)
            moved = greedy_swap(schedule, allow_moves=True)
            assert moved.estimate_after <= plain.estimate_after

    def test_moved_schedules_stay_valid(self, paper_l6):
        for index in range(6):
            loop = generate_loop(index)
            schedule = modulo_schedule(loop.graph, paper_l6)
            result = greedy_swap(schedule, allow_moves=True)
            result.schedule.verify()

    def test_moves_recorded(self):
        """A lone op on an otherwise idle unit class can only move, not swap:
        a one-op-per-row loop on the 4-ld/st example machine has free slots."""
        machine = example_config()
        loop = make_kernel("average_chain")
        schedule = modulo_schedule(loop.graph, machine)
        result = greedy_swap(schedule, allow_moves=True)
        # Whether or not moves improved this loop, the fields must agree.
        assert result.n_moves == len(result.moves)
        assert result.n_swaps == len(result.swaps)

    def test_assignment_matches_final_instances(self, paper_l6):
        loop = generate_loop(2)
        schedule = modulo_schedule(loop.graph, paper_l6)
        result = greedy_swap(schedule, allow_moves=True)
        for op in result.schedule.graph.operations:
            assert result.assignment[op.op_id] == result.schedule.cluster_of(
                op.op_id
            )

    def test_moved_allocation_executes(self, paper_l6):
        loop = generate_loop(8)
        schedule = modulo_schedule(loop.graph, paper_l6)
        result = greedy_swap(schedule, allow_moves=True)
        alloc = allocate_dual(result.schedule, result.assignment)
        execute_kernel(result.schedule, alloc, iterations=5)

    def test_default_disables_moves(self, paper_l6):
        loop = generate_loop(2)
        schedule = modulo_schedule(loop.graph, paper_l6)
        result = greedy_swap(schedule)
        assert result.moves == ()
