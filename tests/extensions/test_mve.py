"""Tests for modulo variable expansion (the no-rotating-file baseline)."""

import math

import pytest

from repro.regalloc.allocation import allocate_unified
from repro.regalloc.mve import allocate_mve
from repro.sched.modulo import modulo_schedule
from repro.workloads.kernels import all_kernels, example_loop
from repro.workloads.synthetic import generate_loop


class TestExampleLoop:
    def test_copies_equal_lifetimes_at_ii_one(self, example_schedule):
        mve = allocate_mve(example_schedule)
        for op_id, lt in mve.lifetimes.items():
            assert mve.copies[op_id] == lt.length  # II = 1

    def test_registers_match_rotating_at_ii_one(self, example_schedule):
        """At II = 1 the ceiling is exact, so MVE needs exactly the 42
        registers of the rotating file -- the gap only opens at II > 1."""
        mve = allocate_mve(example_schedule)
        assert mve.registers_required == 42

    def test_unroll_factor_is_longest_lifetime(self, example_schedule):
        assert allocate_mve(example_schedule).unroll_factor == 13

    def test_code_expansion(self, example_schedule):
        mve = allocate_mve(example_schedule)
        assert mve.code_expansion == 13 * 7


class TestGeneral:
    @pytest.mark.parametrize("index", range(10))
    def test_mve_never_beats_rotating_allocation(self, index, paper_l6):
        """Per-value ceilings can only round up relative to wands packing."""
        loop = generate_loop(index)
        schedule = modulo_schedule(loop.graph, paper_l6)
        mve = allocate_mve(schedule)
        rotating = allocate_unified(schedule)
        # sum(ceil(L/II)) >= ceil(sum(L)/II) >= the packed requirement - slack
        assert mve.registers_required >= rotating.max_live

    def test_unroll_lcm_is_multiple_of_every_copy_count(self, paper_l6):
        loop = all_kernels()[0]
        schedule = modulo_schedule(loop.graph, paper_l6)
        mve = allocate_mve(schedule)
        for q in mve.copies.values():
            assert mve.unroll_factor_lcm % q == 0

    def test_unroll_max_divides_nothing_but_bounds(self, paper_l6):
        for loop in all_kernels()[:6]:
            schedule = modulo_schedule(loop.graph, paper_l6)
            mve = allocate_mve(schedule)
            assert mve.unroll_factor == max(mve.copies.values())
            assert mve.unroll_factor <= mve.unroll_factor_lcm

    def test_copies_formula(self, paper_l6):
        loop = all_kernels()[3]
        schedule = modulo_schedule(loop.graph, paper_l6)
        mve = allocate_mve(schedule)
        for op_id, lt in mve.lifetimes.items():
            assert mve.copies[op_id] == max(
                1, math.ceil(lt.length / schedule.ii)
            )

    def test_rotating_file_advantage_at_high_ii(self, paper_l6):
        """Aggregate over kernels: MVE pays strictly more registers."""
        total_mve = 0
        total_rot = 0
        for loop in all_kernels():
            schedule = modulo_schedule(loop.graph, paper_l6)
            total_mve += allocate_mve(schedule).registers_required
            total_rot += allocate_unified(schedule).registers_required
        assert total_mve > total_rot
