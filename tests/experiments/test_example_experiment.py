"""Golden tests: the Section 4.1 experiment reproduces Tables 2/3/4."""

import pytest

from repro.experiments.example_loop import format_report, run_example


@pytest.fixture(scope="module")
def result():
    return run_example()


class TestGoldenNumbers:
    def test_ii_one(self, result):
        assert result.ii == 1

    def test_table2_lifetimes(self, result):
        lengths = {n: lt.length for n, lt in result.lifetimes.items()}
        assert lengths == {
            "L1": 13, "L2": 7, "M3": 6, "A4": 6, "M5": 6, "A6": 4,
        }

    def test_unified_42(self, result):
        assert result.unified_registers == 42

    def test_partitioned_29(self, result):
        assert result.partitioned_registers == 29

    def test_table3_breakdown(self, result):
        assert result.partitioned.global_registers == 13
        assert sorted(result.partitioned.per_cluster.values()) == [26, 29]

    def test_swapped_23(self, result):
        assert result.swapped_registers == 23

    def test_table4_breakdown(self, result):
        assert result.swapped.global_registers == 0
        assert sorted(result.swapped.per_cluster.values()) == [19, 23]

    def test_one_swap_suffices(self, result):
        assert len(result.swap.swaps) == 1


class TestReport:
    def test_report_contains_all_tables(self, result):
        text = format_report(result)
        assert "Table 2" in text
        assert "Table 3" in text
        assert "Table 4" in text
        assert "42 / 29 / 23" in text

    def test_report_contains_kernel_figures(self, result):
        text = format_report(result)
        assert "Figure 4" in text
        assert "Figure 5" in text

    def test_clustered_kernel_layout(self, result):
        kernel = result.schedule.format_kernel_clustered()
        lines = kernel.splitlines()
        # One header + II rows; the example machine has 8 unit columns.
        assert len(lines) == 1 + result.ii
        assert "C0.adder0" in lines[0] and "C1.mem3" in lines[0]
        # All seven operations plus one idle unit appear in the body.
        body = "\n".join(lines[1:])
        for name in ("L1", "L2", "M3", "A4", "M5", "A6", "S7"):
            assert name in body
        assert "nop" in body

    def test_clustered_kernel_stages_bracketed(self, result):
        body = result.schedule.format_kernel_clustered().splitlines()[1]
        assert "[0] L1" in body or "[0] L2" in body

    def test_report_register_totals(self, result):
        text = format_report(result)
        for n in ("42", "29", "23"):
            assert n in text
