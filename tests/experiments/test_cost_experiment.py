"""Tests for the cost-study experiment."""

from repro.experiments.cost import (
    format_report,
    read_write_ports,
    run_cost_study,
)
from repro.machine.config import paper_config, pxly


class TestPorts:
    def test_paper_machine_ports(self):
        reads, writes = read_write_ports(paper_config(3))
        # 2 adders + 2 mults read 2 each, 2 ld/st read 1 (store datum) = 10.
        assert reads == 10
        # 2 adders + 2 mults + 2 loads write = 6.
        assert writes == 6

    def test_pxly_ports(self):
        reads, writes = read_write_ports(pxly(2, 6))
        assert reads == 2 * 2 + 2 * 2 + 2 + 1  # incl. load ports + store port
        assert writes == 2 + 2 + 2


class TestStudy:
    def test_organizations_present(self):
        study = run_cost_study(32)
        names = [o.name for o in study.organizations]
        assert names == [
            "unified",
            "consistent dual",
            "non-consistent dual",
            "doubled unified",
        ]

    def test_conclusion_claims_hold(self):
        """Non-consistent dual: cheaper and faster than doubling registers,
        same hardware as the consistent dual."""
        study = run_cost_study(32)
        orgs = {o.name: o for o in study.organizations}
        nc = orgs["non-consistent dual"]
        assert nc.total_area < orgs["doubled unified"].total_area
        assert nc.access_time < orgs["unified"].access_time
        assert nc.specifier_bits == orgs["unified"].specifier_bits

    def test_report_renders(self):
        text = format_report([run_cost_study(32), run_cost_study(64)])
        assert "non-consistent dual" in text
        assert "R=64" in text
