"""Tests for the Table 1 experiment driver."""

import pytest

from repro.experiments.table1 import (
    THRESHOLDS,
    default_configs,
    format_report,
    run_table1,
)
from repro.workloads.suite import quick_suite


@pytest.fixture(scope="module")
def rows():
    return run_table1(list(quick_suite(40)))


class TestStructure:
    def test_default_configs(self):
        names = [m.name for m in default_configs()]
        assert names == ["P1L3", "P1L6", "P2L3", "P2L6"]

    def test_one_row_per_config(self, rows):
        assert [r.config for r in rows] == ["P1L3", "P1L6", "P2L3", "P2L6"]

    def test_percentages_monotone_in_threshold(self, rows):
        for row in rows:
            static = [row.static_percent[t] for t in THRESHOLDS]
            dynamic = [row.dynamic_percent[t] for t in THRESHOLDS]
            assert static == sorted(static)
            assert dynamic == sorted(dynamic)

    def test_percentages_in_range(self, rows):
        for row in rows:
            for pct in list(row.static_percent.values()) + list(
                row.dynamic_percent.values()
            ):
                assert 0.0 <= pct <= 100.0


class TestPaperShape:
    def test_aggressiveness_raises_pressure(self, rows):
        """P2L6 must fit the fewest loops; P1L3 the most (paper's Table 1)."""
        by_name = {r.config: r for r in rows}
        assert (
            by_name["P1L3"].static_percent[32]
            >= by_name["P2L6"].static_percent[32]
        )
        assert (
            by_name["P1L3"].over_64_static()
            <= by_name["P2L6"].over_64_static()
        )

    def test_p1l3_nearly_all_fit_64(self, rows):
        """Paper: only 0.3% of loops exceed 64 registers at P1L3."""
        by_name = {r.config: r for r in rows}
        assert by_name["P1L3"].static_percent[64] >= 95.0

    def test_report_formatting(self, rows):
        text = format_report(rows)
        assert "Table 1" in text
        assert "P2L6" in text
