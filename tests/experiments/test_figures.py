"""Tests for the Figure 6/7/8/9 experiment drivers.

These use a small suite; the paper-scale shapes are validated on the full
suite in EXPERIMENTS.md.  The assertions here pin the *relations* the paper
reports (dual left of unified, swapped >= partitioned, spill code raising
traffic) which must hold at any suite size.
"""

import pytest

from repro.core.models import Model
from repro.experiments import figure6, figure7, figure8, figure9
from repro.workloads.suite import quick_suite

SUITE = 40
SPILL_SUITE = 16


@pytest.fixture(scope="module")
def loops():
    return list(quick_suite(SUITE))


@pytest.fixture(scope="module")
def spill_loops():
    return list(quick_suite(SUITE).subset(SPILL_SUITE))


@pytest.fixture(scope="module")
def fig6(loops):
    return figure6.run_figure6(loops)


@pytest.fixture(scope="module")
def fig7(loops):
    return figure7.run_figure7(loops)


@pytest.fixture(scope="module")
def fig8(spill_loops):
    return figure8.run_figure8(spill_loops)


@pytest.fixture(scope="module")
def fig9(spill_loops):
    return figure9.run_figure9(spill_loops)


class TestFigure6:
    def test_two_latency_sets(self, fig6):
        assert [d.latency for d in fig6] == [3, 6]

    def test_partitioned_dominates_unified(self, fig6):
        # Small epsilon: first-fit non-monotonicity can flip a single loop
        # across a grid threshold; the curves dominate statistically.
        for dist in fig6:
            for point_u, point_p in zip(
                dist.curves["unified"].points,
                dist.curves["partitioned"].points,
            ):
                assert point_p.fraction >= point_u.fraction - 0.03

    def test_swapped_dominates_partitioned(self, fig6):
        for dist in fig6:
            for point_p, point_s in zip(
                dist.curves["partitioned"].points,
                dist.curves["swapped"].points,
            ):
                assert point_s.fraction >= point_p.fraction - 0.03

    def test_latency6_shifts_curves_right(self, fig6):
        l3, l6 = fig6
        assert l6.curves["unified"].at(32) <= l3.curves["unified"].at(32)

    def test_report_renders(self, fig6):
        text = figure6.format_report(fig6)
        assert "Figure 6" in text and "latency 6" in text


class TestFigure7:
    def test_weighted_curves_monotone(self, fig7):
        for dist in fig7:
            for curve in dist.curves.values():
                fractions = [p.fraction for p in curve.points]
                assert fractions == sorted(fractions)

    def test_partitioned_still_dominates(self, fig7):
        for dist in fig7:
            assert dist.curves["partitioned"].at(32) >= dist.curves[
                "unified"
            ].at(32)

    def test_report_says_cycles(self, fig7):
        assert "cycles" in figure7.format_report(fig7)


class TestFigure8:
    def test_grid_complete(self, fig8):
        combos = {(c.latency, c.budget, c.model) for c in fig8}
        assert len(combos) == 2 * 2 * 4

    def test_ideal_is_one(self, fig8):
        for cell in fig8:
            if cell.model is Model.IDEAL:
                assert cell.performance == pytest.approx(1.0)
            else:
                assert cell.performance <= 1.0 + 1e-9

    def test_dual_beats_unified_everywhere(self, fig8):
        perf = {
            (c.latency, c.budget, c.model): c.performance for c in fig8
        }
        for latency in (3, 6):
            for budget in (32, 64):
                assert (
                    perf[(latency, budget, Model.PARTITIONED)]
                    >= perf[(latency, budget, Model.UNIFIED)] - 1e-9
                )

    def test_more_registers_never_hurt(self, fig8):
        perf = {
            (c.latency, c.budget, c.model): c.performance for c in fig8
        }
        for latency in (3, 6):
            for model in (Model.UNIFIED, Model.PARTITIONED, Model.SWAPPED):
                assert (
                    perf[(latency, 64, model)]
                    >= perf[(latency, 32, model)] - 1e-9
                )

    def test_report_renders(self, fig8):
        text = figure8.format_report(fig8)
        assert "Figure 8" in text and "L=6,R=32" in text


class TestFigure9:
    def test_grid_complete(self, fig9):
        assert len(fig9) == 16

    def test_densities_are_fractions(self, fig9):
        for cell in fig9:
            assert 0.0 <= cell.density <= 1.0

    def test_unified_never_less_traffic_than_dual(self, fig9):
        traffic = {
            (c.latency, c.budget, c.model): c.total_accesses for c in fig9
        }
        for latency in (3, 6):
            for budget in (32, 64):
                assert (
                    traffic[(latency, budget, Model.UNIFIED)]
                    >= traffic[(latency, budget, Model.PARTITIONED)]
                )

    def test_ideal_density_is_floor(self, fig9):
        dens = {(c.latency, c.budget, c.model): c.density for c in fig9}
        for latency in (3, 6):
            for budget in (32, 64):
                for model in (Model.UNIFIED, Model.PARTITIONED, Model.SWAPPED):
                    assert (
                        dens[(latency, budget, model)]
                        >= dens[(latency, budget, Model.IDEAL)] - 1e-9
                    )

    def test_report_renders(self, fig9):
        assert "Figure 9" in figure9.format_report(fig9)
