"""CLI argument validation: bad counts die at the parser, with a reason."""

import pytest

from repro.__main__ import main
from repro.experiments.runner import non_negative_int, positive_int


class TestArgparseTypes:
    def test_positive_int_accepts(self):
        assert positive_int("3") == 3

    @pytest.mark.parametrize("text", ["0", "-1", "-200", "abc", "1.5"])
    def test_positive_int_rejects(self, text):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            positive_int(text)

    def test_non_negative_int_accepts_zero(self):
        assert non_negative_int("0") == 0

    @pytest.mark.parametrize("text", ["-1", "abc"])
    def test_non_negative_int_rejects(self, text):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            non_negative_int(text)


class TestMainRejectsBadCounts:
    """argparse exits with code 2 and a usage line instead of letting a
    nonsensical count crash a worker or produce an empty report."""

    @pytest.mark.parametrize(
        "argv",
        [
            ["run", "--loops", "0"],
            ["run", "--loops", "-5"],
            ["run", "--spill-loops", "0"],
            ["run", "--workers", "-1"],
            ["sweep", "--loops", "-3"],
            ["sweep", "--workers", "-2"],
            ["serve", "--port", "-1"],
            ["serve", "--workers", "-1"],
            ["--loops", "0"],  # backward-compat implicit "run"
        ],
    )
    def test_exits_with_usage_error(self, argv, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "integer" in err

    def test_unknown_sweep_policy_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["sweep", "--policy", "nope"])
        assert excinfo.value.code == 2
        assert "--policy" in capsys.readouterr().err

    def test_pressure_sweep_policy_error_names_the_flags(self, capsys):
        """The facade's error names wire fields; the CLI must translate
        back to the flags the user actually typed."""
        assert main(["sweep", "--name", "pressure", "--policy", "longest"]) == 2
        err = capsys.readouterr().err
        assert "--policy/--escalation" in err
        assert "victim_policies" not in err
