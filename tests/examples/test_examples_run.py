"""Every script in examples/ must run at tiny scale against today's API.

The directory is glob-discovered: a newly added example is automatically
smoke-tested (and this file fails loudly if one needs arguments it does
not declare here), so the examples cannot silently rot when the API
moves underneath them.  Content assertions live in
``tests/integration/test_examples.py``; this suite only guards
"runs cleanly, at small scale, quickly".
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"

#: Tiny-scale arguments per script (empty tuple: runs with no arguments).
#: Scripts taking a suite size get the smallest size that exercises the
#: full flow; everything else must work argument-free.
TINY_ARGS: dict[str, tuple[str, ...]] = {
    "api_client.py": ("8",),
    "serve_client.py": ("8",),
    "quickstart.py": (),
    "custom_loop.py": (),
    "simulate_kernel.py": (),
    "register_file_cost.py": (),
    "spill_pressure.py": (),
    "perfect_club_study.py": ("12",),
    "sweep_models.py": ("8",),
    "paper_report.py": ("12",),
}


def discovered_scripts() -> list[str]:
    return sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_every_example_has_tiny_scale_args():
    """A new example must declare how to run it small (or argument-free)."""
    missing = set(discovered_scripts()) - set(TINY_ARGS)
    assert not missing, (
        f"examples without a TINY_ARGS entry: {sorted(missing)} -- add "
        "one so the smoke test keeps covering every script"
    )


def test_no_stale_entries():
    stale = set(TINY_ARGS) - set(discovered_scripts())
    assert not stale, f"TINY_ARGS names deleted scripts: {sorted(stale)}"


@pytest.mark.parametrize("script", discovered_scripts())
def test_example_runs_at_tiny_scale(script, tmp_path):
    args = TINY_ARGS.get(script, ())
    if script == "paper_report.py":
        args = (*args, str(tmp_path / "report"))
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script), *args],
        capture_output=True,
        text=True,
        timeout=300,
        env={
            **__import__("os").environ,
            "PYTHONPATH": str(EXAMPLES_DIR.parent / "src"),
            # Keep the smoke test hermetic: no shared on-disk cache.
            "REPRO_CACHE_DIR": str(tmp_path / "cache"),
        },
    )
    assert result.returncode == 0, (
        f"{script} {' '.join(args)} failed:\n{result.stderr[-2000:]}"
    )
    assert result.stdout.strip(), f"{script} printed nothing"
