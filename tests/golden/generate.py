"""Regenerate the golden report snapshot (``default_suite.json``).

The snapshot pins the *numbers* of the per-loop compilation flow -- the
pressure triple of Figures 6/7 and the full schedule/allocate/spill outcome
of Figures 8/9 -- on the seeded default suite.  It was captured from the
pre-pipeline monolithic implementation (PR 1) and must never change
silently: the pass-pipeline refactor is required to produce byte-identical
reports.  Regenerate only when the evaluation *semantics* deliberately
change, and say so in the commit message::

    PYTHONPATH=src python tests/golden/generate.py
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.models import Model
from repro.core.pressure import pressure_report
from repro.machine.config import paper_config
from repro.spill.spiller import evaluate_loop
from repro.workloads.suite import perfect_club_like

GOLDEN_PATH = Path(__file__).with_name("default_suite.json")

#: Snapshot scope: small enough to recompute in a test, wide enough to cover
#: every model, both paper latencies, and every spill policy/strategy.
N_PRESSURE_LOOPS = 64
N_SPILL_LOOPS = 16
PRESSURE_LATENCIES = (3, 6)
SPILL_LATENCY = 6
SPILL_BUDGET = 32
SPILL_MODELS = (Model.UNIFIED, Model.PARTITIONED, Model.SWAPPED)
VICTIM_POLICIES = ("longest", "most_registers", "first")


def pressure_rows() -> list[dict]:
    suite = perfect_club_like(N_PRESSURE_LOOPS)
    rows = []
    for latency in PRESSURE_LATENCIES:
        machine = paper_config(latency)
        for loop in suite:
            report = pressure_report(loop, machine)
            rows.append(
                {
                    "loop": loop.name,
                    "latency": latency,
                    "ii": report.ii,
                    "mii": report.mii,
                    "unified": report.unified,
                    "partitioned": report.partitioned,
                    "swapped": report.swapped,
                    "max_live": report.max_live,
                }
            )
    return rows


def evaluation_rows() -> list[dict]:
    suite = perfect_club_like(N_PRESSURE_LOOPS)
    loops = list(suite.subset(N_SPILL_LOOPS))
    machine = paper_config(SPILL_LATENCY)
    rows = []
    for loop in loops:
        for model in (Model.IDEAL, *SPILL_MODELS):
            policies = ("longest",) if model is Model.IDEAL else VICTIM_POLICIES
            for policy in policies:
                ev = evaluate_loop(
                    loop,
                    machine,
                    model,
                    register_budget=SPILL_BUDGET,
                    victim_policy=policy,
                )
                rows.append(
                    {
                        "loop": loop.name,
                        "model": model.value,
                        "policy": policy,
                        "strategy": "spill",
                        "ii": ev.ii,
                        "mii": ev.mii,
                        "spilled_values": ev.spilled_values,
                        "ii_increases": ev.ii_increases,
                        "fits": ev.fits,
                        "registers": ev.requirement.registers,
                        "memory_ops": ev.memory_ops_per_iteration,
                        "spill_ops": ev.spill_ops_per_iteration,
                    }
                )
        ev = evaluate_loop(
            loop,
            machine,
            Model.UNIFIED,
            register_budget=SPILL_BUDGET,
            pressure_strategy="increase_ii",
        )
        rows.append(
            {
                "loop": loop.name,
                "model": Model.UNIFIED.value,
                "policy": "longest",
                "strategy": "increase_ii",
                "ii": ev.ii,
                "mii": ev.mii,
                "spilled_values": ev.spilled_values,
                "ii_increases": ev.ii_increases,
                "fits": ev.fits,
                "registers": ev.requirement.registers,
                "memory_ops": ev.memory_ops_per_iteration,
                "spill_ops": ev.spill_ops_per_iteration,
            }
        )
    return rows


def build_snapshot() -> dict:
    return {
        "suite": {"n_loops": N_PRESSURE_LOOPS, "seed": None},
        "pressure": pressure_rows(),
        "evaluations": evaluation_rows(),
    }


def main() -> None:
    snapshot = build_snapshot()
    suite = perfect_club_like(N_PRESSURE_LOOPS)
    snapshot["suite"]["seed"] = suite.seed
    GOLDEN_PATH.write_text(json.dumps(snapshot, indent=1, sort_keys=True))
    print(
        f"wrote {GOLDEN_PATH}: {len(snapshot['pressure'])} pressure rows, "
        f"{len(snapshot['evaluations'])} evaluation rows"
    )


if __name__ == "__main__":
    main()
