"""Unit tests for machine configurations."""

import pytest

from repro.ir.operation import OpType
from repro.machine.config import (
    ConfigError,
    MachineConfig,
    example_config,
    paper_config,
    pxly,
)
from repro.machine.resources import ADDER, MEM, MULT, ResourcePool


class TestPaperConfig:
    def test_pools(self, paper_l3):
        assert paper_l3.units(ADDER) == 2
        assert paper_l3.units(MULT) == 2
        assert paper_l3.units(MEM) == 2

    def test_latencies(self, paper_l3, paper_l6):
        assert paper_l3.latency_of(OpType.FADD) == 3
        assert paper_l6.latency_of(OpType.FMUL) == 6
        assert paper_l3.latency_of(OpType.LOAD) == 1
        assert paper_l6.latency_of(OpType.STORE) == 1

    def test_divide_same_latency_as_multiply(self, paper_l6):
        assert paper_l6.latency_of(OpType.FDIV) == paper_l6.latency_of(
            OpType.FMUL
        )

    def test_two_clusters(self, paper_l3):
        assert paper_l3.n_clusters == 2

    def test_memory_bandwidth(self, paper_l3):
        assert paper_l3.memory_bandwidth == 2


class TestExampleConfig:
    def test_four_memory_units(self, example_machine):
        assert example_machine.units(MEM) == 4

    def test_memory_units_block_partitioned(self, example_machine):
        clusters = [
            example_machine.cluster_of_instance(MEM, i) for i in range(4)
        ]
        assert clusters == [0, 0, 1, 1]

    def test_adders_split(self, example_machine):
        assert example_machine.cluster_of_instance(ADDER, 0) == 0
        assert example_machine.cluster_of_instance(ADDER, 1) == 1


class TestPxly:
    def test_p2l6_shape(self):
        m = pxly(2, 6)
        assert m.name == "P2L6"
        assert m.units(ADDER) == 2
        assert m.units("load") == 2
        assert m.units("store") == 1
        assert m.latency_of(OpType.FADD) == 6

    def test_split_memory_mapping(self):
        m = pxly(1, 3)
        assert m.pool_for(OpType.LOAD) == "load"
        assert m.pool_for(OpType.STORE) == "store"
        assert m.memory_bandwidth == 3

    def test_single_cluster(self):
        assert pxly(2, 3).n_clusters == 1
        assert pxly(2, 3).cluster_of_instance(ADDER, 1) == 0


class TestValidation:
    def _latencies(self, value=1):
        return {t: value for t in OpType}

    def test_duplicate_pools_rejected(self):
        with pytest.raises(ConfigError):
            MachineConfig(
                name="bad",
                pools=(ResourcePool(ADDER, 1), ResourcePool(ADDER, 2)),
                pool_of={t: ADDER for t in OpType},
                latency=self._latencies(),
            )

    def test_unknown_pool_mapping_rejected(self):
        with pytest.raises(ConfigError):
            MachineConfig(
                name="bad",
                pools=(ResourcePool(ADDER, 1),),
                pool_of={t: "ghost" for t in OpType},
                latency=self._latencies(),
            )

    def test_zero_latency_rejected(self):
        with pytest.raises(ConfigError):
            MachineConfig(
                name="bad",
                pools=(ResourcePool(ADDER, 1),),
                pool_of={t: ADDER for t in OpType},
                latency=self._latencies(0),
            )

    def test_zero_count_pool_rejected(self):
        with pytest.raises(ValueError):
            ResourcePool(ADDER, 0)

    def test_instance_out_of_range(self, paper_l3):
        with pytest.raises(ConfigError):
            paper_l3.cluster_of_instance(ADDER, 7)

    def test_instances_in_cluster(self, example_machine):
        assert example_machine.instances_in_cluster(MEM, 0) == [0, 1]
        assert example_machine.instances_in_cluster(MEM, 1) == [2, 3]
