"""Unit tests for the register-file cost model (paper, Section 3.2)."""

import pytest

from repro.machine.costmodel import (
    CostModel,
    RegisterFileGeometry,
    compare_organizations,
)


class TestGeometry:
    def test_specifier_bits(self):
        assert RegisterFileGeometry(32, 2, 1).specifier_bits == 5
        assert RegisterFileGeometry(64, 2, 1).specifier_bits == 6
        assert RegisterFileGeometry(33, 2, 1).specifier_bits == 6

    def test_ports_total(self):
        assert RegisterFileGeometry(32, 6, 4).ports == 10

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            RegisterFileGeometry(0, 2, 1)
        with pytest.raises(ValueError):
            RegisterFileGeometry(32, 0, 1)


class TestCostModel:
    def test_area_reference_normalization(self):
        geom = RegisterFileGeometry(32, 2, 1)
        assert CostModel().area(geom) == pytest.approx(1.0)

    def test_access_time_reference_normalization(self):
        geom = RegisterFileGeometry(32, 2, 1)
        assert CostModel().access_time(geom) == pytest.approx(1.0)

    def test_area_quadratic_in_ports(self):
        m = CostModel()
        small = RegisterFileGeometry(32, 2, 2)
        big = RegisterFileGeometry(32, 4, 4)  # double the ports
        assert m.area(big) == pytest.approx(4 * m.area(small))

    def test_area_linear_in_registers(self):
        m = CostModel()
        r32 = RegisterFileGeometry(32, 4, 2)
        r64 = RegisterFileGeometry(64, 4, 2)
        assert m.area(r64) == pytest.approx(2 * m.area(r32))

    def test_access_time_grows_with_read_ports(self):
        m = CostModel()
        assert m.access_time(
            RegisterFileGeometry(32, 8, 4)
        ) > m.access_time(RegisterFileGeometry(32, 4, 4))

    def test_access_time_grows_with_registers(self):
        m = CostModel()
        assert m.access_time(
            RegisterFileGeometry(64, 4, 4)
        ) > m.access_time(RegisterFileGeometry(32, 4, 4))


class TestComparison:
    def test_four_organizations(self):
        orgs = {o.name: o for o in compare_organizations(32, 8, 4)}
        assert set(orgs) == {
            "unified",
            "consistent dual",
            "non-consistent dual",
            "doubled unified",
        }

    def test_dual_is_faster_than_unified(self):
        orgs = {o.name: o for o in compare_organizations(32, 8, 4)}
        assert orgs["consistent dual"].access_time < orgs["unified"].access_time

    def test_non_consistent_same_hardware_as_consistent(self):
        orgs = {o.name: o for o in compare_organizations(32, 8, 4)}
        assert (
            orgs["non-consistent dual"].total_area
            == orgs["consistent dual"].total_area
        )
        assert (
            orgs["non-consistent dual"].access_time
            == orgs["consistent dual"].access_time
        )

    def test_doubling_registers_costs_specifier_bit(self):
        orgs = {o.name: o for o in compare_organizations(32, 8, 4)}
        assert orgs["doubled unified"].specifier_bits == 6
        assert orgs["non-consistent dual"].specifier_bits == 5

    def test_dual_cheaper_than_doubled_unified(self):
        """The conclusions' claim: cheaper than doubling the registers."""
        orgs = {o.name: o for o in compare_organizations(32, 8, 4)}
        assert (
            orgs["non-consistent dual"].total_area
            < orgs["doubled unified"].total_area
        )
        assert (
            orgs["non-consistent dual"].access_time
            < orgs["doubled unified"].access_time
        )
