"""Unit tests for the loop-builder DSL."""

import pytest

from repro.ir.builder import BuilderError, LoopBuilder
from repro.ir.operation import Immediate, InvariantRef, OpType, ValueRef


class TestBasics:
    def test_daxpy_shape(self):
        b = LoopBuilder("daxpy")
        x = b.load("x")
        y = b.load("y")
        b.store(b.add(b.mul(b.inv("a"), x), y), "y")
        loop = b.build(trip_count=10)
        g = loop.graph
        assert g.count(OpType.LOAD) == 2
        assert g.count(OpType.FMUL) == 1
        assert g.count(OpType.FADD) == 1
        assert g.count(OpType.STORE) == 1

    def test_string_coerces_to_invariant(self):
        b = LoopBuilder()
        v = b.add(b.load("x"), "c0")
        op = b._graph.op(v.op_id)
        assert isinstance(op.operands[1], InvariantRef)

    def test_number_coerces_to_immediate(self):
        b = LoopBuilder()
        v = b.mul(b.load("x"), 2)
        op = b._graph.op(v.op_id)
        assert op.operands[1] == Immediate(2.0)

    def test_named_operations(self):
        b = LoopBuilder()
        v = b.load("x", name="L1")
        assert b._graph.op(v.op_id).name == "L1"

    def test_every_unary_and_binary_op(self):
        b = LoopBuilder()
        x = b.load("x")
        ops = [
            b.add(x, 1.0),
            b.sub(x, 1.0),
            b.mul(x, 2.0),
            b.div(x, 2.0),
            b.neg(x),
            b.conv(x),
        ]
        for v in ops:
            b.store(v, "out")
        loop = b.build()
        assert loop.size == 1 + 6 + 6

    def test_cross_builder_value_rejected(self):
        b1, b2 = LoopBuilder(), LoopBuilder()
        x = b1.load("x")
        with pytest.raises(BuilderError):
            b2.add(x, 1.0)


class TestPlaceholders:
    def test_reduction_creates_carried_edge(self):
        b = LoopBuilder()
        acc = b.placeholder()
        s = b.add(acc, b.load("x"))
        b.bind(acc, s, distance=1)
        loop = b.build()
        op = loop.graph.op(s.op_id)
        carried = op.operands[0]
        assert isinstance(carried, ValueRef)
        assert carried.producer == s.op_id
        assert carried.distance == 1

    def test_unbound_placeholder_rejected_at_build(self):
        b = LoopBuilder()
        acc = b.placeholder()
        b.store(b.add(acc, b.load("x")), "y")
        with pytest.raises(BuilderError):
            b.build()

    def test_double_bind_rejected(self):
        b = LoopBuilder()
        acc = b.placeholder()
        s = b.add(acc, b.load("x"))
        b.bind(acc, s)
        with pytest.raises(BuilderError):
            b.bind(acc, s)

    def test_distance_zero_bind_rejected(self):
        b = LoopBuilder()
        acc = b.placeholder()
        s = b.add(acc, b.load("x"))
        with pytest.raises(BuilderError):
            b.bind(acc, s, distance=0)

    def test_distance_two_recurrence(self):
        b = LoopBuilder()
        ph = b.placeholder()
        x = b.add(ph, b.load("u"))
        b.bind(ph, x, distance=2)
        b.store(x, "x")
        loop = b.build()
        carried = loop.graph.op(x.op_id).operands[0]
        assert carried.distance == 2


class TestOrderEdges:
    def test_order_edge_recorded(self):
        b = LoopBuilder()
        x = b.load("x")
        s = b.store(x, "y")
        l2 = b.load("y")
        b.order(s, l2, distance=1)
        loop = b.build()
        extra = loop.graph.extra_edges()
        assert len(extra) == 1
        assert extra[0].src == s.op_id
        assert extra[0].distance == 1


class TestFinalization:
    def test_build_after_build_rejected(self):
        b = LoopBuilder()
        b.store(b.load("x"), "y")
        b.build()
        with pytest.raises(BuilderError):
            b.load("z")

    def test_trip_count_positive(self):
        b = LoopBuilder()
        b.store(b.load("x"), "y")
        with pytest.raises(ValueError):
            b.build(trip_count=0)

    def test_source_recorded(self):
        b = LoopBuilder("k")
        b.store(b.load("x"), "y")
        loop = b.build(source="y(i) = x(i)")
        assert loop.source == "y(i) = x(i)"
        assert loop.name == "k"
