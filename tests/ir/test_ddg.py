"""Unit tests for dependence graphs."""

import pytest

from repro.ir.ddg import DependenceGraph, EdgeKind, GraphError
from repro.ir.operation import OpType, ValueRef


@pytest.fixture()
def chain():
    """load -> add -> store."""
    g = DependenceGraph("chain")
    load = g.add_operation(OpType.LOAD, name="L", symbol="x")
    add = g.add_operation(
        OpType.FADD, (ValueRef(load.op_id), ValueRef(load.op_id)), name="A"
    )
    g.add_operation(OpType.STORE, (ValueRef(add.op_id),), name="S", symbol="y")
    return g


class TestConstruction:
    def test_ids_are_sequential(self, chain):
        assert [op.op_id for op in chain.operations] == [0, 1, 2]

    def test_len_and_contains(self, chain):
        assert len(chain) == 3
        assert 0 in chain
        assert 99 not in chain

    def test_unknown_producer_rejected(self):
        g = DependenceGraph()
        with pytest.raises(GraphError):
            g.add_operation(OpType.FNEG, (ValueRef(42),))

    def test_operand_of_store_value_rejected(self):
        g = DependenceGraph()
        load = g.add_operation(OpType.LOAD, symbol="x")
        store = g.add_operation(
            OpType.STORE, (ValueRef(load.op_id),), symbol="y"
        )
        with pytest.raises(GraphError):
            g.add_operation(OpType.FNEG, (ValueRef(store.op_id),))

    def test_flow_edge_cannot_be_added_explicitly(self, chain):
        with pytest.raises(GraphError):
            chain.add_edge(0, 1, kind=EdgeKind.FLOW)

    def test_edge_endpoints_must_exist(self, chain):
        with pytest.raises(GraphError):
            chain.add_edge(0, 99)

    def test_negative_distance_rejected(self, chain):
        with pytest.raises(GraphError):
            chain.add_edge(0, 1, distance=-1)


class TestEdges:
    def test_flow_edges_derived_from_operands(self, chain):
        edges = chain.flow_edges()
        assert [(e.src, e.dst) for e in edges] == [(0, 1), (0, 1), (1, 2)]
        assert all(e.kind is EdgeKind.FLOW for e in edges)

    def test_flow_edges_carry_positions(self, chain):
        first, second, _ = chain.flow_edges()
        assert first.position == 0
        assert second.position == 1

    def test_extra_edges_appended(self, chain):
        chain.add_edge(2, 0, kind=EdgeKind.MEMORY, distance=1, min_delay=1)
        assert len(chain.edges()) == 4
        assert chain.extra_edges()[0].distance == 1

    def test_consumers(self, chain):
        consumers = chain.consumers(0)
        assert [(c.name, d) for c, d in consumers] == [("A", 0), ("A", 0)]
        assert chain.consumers(1)[0][0].name == "S"
        assert chain.consumers(2) == []


class TestAccessors:
    def test_values_excludes_stores(self, chain):
        assert [op.name for op in chain.values()] == ["L", "A"]

    def test_count(self, chain):
        assert chain.count(OpType.LOAD) == 1
        assert chain.count(OpType.FADD) == 1
        assert chain.count(OpType.FMUL) == 0

    def test_memory_operations(self, chain):
        assert [op.name for op in chain.memory_operations()] == ["L", "S"]

    def test_set_operands_replaces(self, chain):
        chain.set_operands(1, (ValueRef(0), ValueRef(0, 1)))
        assert chain.op(1).operands[1].distance == 1

    def test_set_operands_checks_producers(self, chain):
        with pytest.raises(GraphError):
            chain.set_operands(1, (ValueRef(77),))


class TestCopy:
    def test_copy_is_independent(self, chain):
        clone = chain.copy()
        clone.add_operation(OpType.LOAD, name="L2", symbol="z")
        assert len(clone) == 4
        assert len(chain) == 3

    def test_copy_preserves_edges(self, chain):
        chain.add_edge(2, 0, distance=1)
        clone = chain.copy()
        assert len(clone.edges()) == len(chain.edges())

    def test_copy_continues_ids(self, chain):
        clone = chain.copy()
        op = clone.add_operation(OpType.LOAD, symbol="z")
        assert op.op_id == 3
