"""Unit tests for graph validation."""

import pytest

from repro.ir.ddg import DependenceGraph, GraphError
from repro.ir.operation import OpType, ValueRef
from repro.ir.validate import validate_graph


def test_empty_graph_rejected():
    with pytest.raises(GraphError):
        validate_graph(DependenceGraph())


def test_arity_mismatch_rejected():
    g = DependenceGraph()
    load = g.add_operation(OpType.LOAD, symbol="x")
    g.add_operation(OpType.FADD, (ValueRef(load.op_id),))  # needs 2 operands
    with pytest.raises(GraphError, match="takes 2 operands"):
        validate_graph(g)


def test_memory_op_without_symbol_rejected():
    g = DependenceGraph()
    g.add_operation(OpType.LOAD)
    with pytest.raises(GraphError, match="without a symbol"):
        validate_graph(g)


def test_self_dependence_distance_zero_rejected():
    g = DependenceGraph()
    load = g.add_operation(OpType.LOAD, symbol="x")
    add = g.add_operation(
        OpType.FADD, (ValueRef(load.op_id), ValueRef(load.op_id))
    )
    g.set_operands(add.op_id, (ValueRef(add.op_id, 0), ValueRef(load.op_id)))
    with pytest.raises(GraphError, match="self-dependence"):
        validate_graph(g)


def test_zero_distance_cycle_rejected():
    g = DependenceGraph()
    load = g.add_operation(OpType.LOAD, symbol="x")
    a = g.add_operation(OpType.FADD, (ValueRef(load.op_id), ValueRef(load.op_id)))
    c = g.add_operation(OpType.FADD, (ValueRef(a.op_id), ValueRef(load.op_id)))
    # Rewire a to consume c at distance 0: a -> c -> a cycle, distance 0.
    g.set_operands(a.op_id, (ValueRef(c.op_id, 0), ValueRef(load.op_id)))
    with pytest.raises(GraphError, match="cycle"):
        validate_graph(g)


def test_positive_distance_cycle_accepted():
    g = DependenceGraph()
    load = g.add_operation(OpType.LOAD, symbol="x")
    a = g.add_operation(OpType.FADD, (ValueRef(load.op_id), ValueRef(load.op_id)))
    g.set_operands(a.op_id, (ValueRef(a.op_id, 1), ValueRef(load.op_id)))
    g.add_operation(OpType.STORE, (ValueRef(a.op_id),), symbol="y")
    validate_graph(g)  # must not raise


def test_zero_distance_cycle_through_memory_edge_rejected():
    g = DependenceGraph()
    load = g.add_operation(OpType.LOAD, symbol="x")
    store = g.add_operation(OpType.STORE, (ValueRef(load.op_id),), symbol="y")
    g.add_edge(store.op_id, load.op_id, distance=0)
    with pytest.raises(GraphError, match="cycle"):
        validate_graph(g)


def test_valid_chain_accepted():
    g = DependenceGraph()
    load = g.add_operation(OpType.LOAD, symbol="x")
    neg = g.add_operation(OpType.FNEG, (ValueRef(load.op_id),))
    g.add_operation(OpType.STORE, (ValueRef(neg.op_id),), symbol="y")
    validate_graph(g)
