"""Unit tests for the operation model."""

import pytest

from repro.ir.operation import (
    FU_CLASS_OF,
    FuClass,
    Immediate,
    InvariantRef,
    Operation,
    OpType,
    ValueRef,
)


class TestOpType:
    def test_memory_classification(self):
        assert OpType.LOAD.is_memory
        assert OpType.STORE.is_memory
        assert not OpType.FADD.is_memory
        assert not OpType.FDIV.is_memory

    def test_store_defines_no_value(self):
        assert not OpType.STORE.defines_value

    @pytest.mark.parametrize(
        "optype",
        [OpType.FADD, OpType.FSUB, OpType.FMUL, OpType.FDIV, OpType.LOAD],
    )
    def test_non_stores_define_values(self, optype):
        assert optype.defines_value

    def test_every_optype_has_fu_class(self):
        for optype in OpType:
            assert optype in FU_CLASS_OF

    def test_adder_class_covers_add_sub_conv(self):
        for optype in (OpType.FADD, OpType.FSUB, OpType.FCONV, OpType.FNEG):
            assert FU_CLASS_OF[optype] is FuClass.ADDER

    def test_multiplier_class_covers_mul_div(self):
        for optype in (OpType.FMUL, OpType.FDIV):
            assert FU_CLASS_OF[optype] is FuClass.MULTIPLIER


class TestOperands:
    def test_value_ref_default_distance(self):
        ref = ValueRef(3)
        assert ref.distance == 0

    def test_value_ref_rejects_negative_distance(self):
        with pytest.raises(ValueError):
            ValueRef(3, -1)

    def test_value_ref_is_hashable(self):
        assert ValueRef(1, 2) == ValueRef(1, 2)
        assert hash(ValueRef(1, 2)) == hash(ValueRef(1, 2))

    def test_invariant_and_immediate(self):
        assert InvariantRef("a").name == "a"
        assert Immediate(2.5).value == 2.5


class TestOperation:
    def _op(self, optype=OpType.FADD, operands=()):
        return Operation(0, "t", optype, tuple(operands))

    def test_fu_class_property(self):
        assert self._op(OpType.FMUL).fu_class is FuClass.MULTIPLIER
        assert self._op(OpType.LOAD).fu_class is FuClass.MEMORY

    def test_value_operands_filters_refs(self):
        op = self._op(
            operands=(ValueRef(1), InvariantRef("a"), Immediate(1.0), ValueRef(2, 1))
        )
        refs = op.value_operands()
        assert [r.producer for r in refs] == [1, 2]

    def test_defines_value(self):
        assert self._op(OpType.LOAD).defines_value
        assert not self._op(OpType.STORE, (ValueRef(1),)).defines_value
