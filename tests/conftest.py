"""Shared fixtures: the paper's example loop and common machines."""

from __future__ import annotations

import pytest

from repro.machine.config import example_config, paper_config
from repro.sched.modulo import modulo_schedule
from repro.workloads.kernels import example_loop


@pytest.fixture(scope="session")
def example_machine():
    return example_config()


@pytest.fixture(scope="session")
def paper_l3():
    return paper_config(3)


@pytest.fixture(scope="session")
def paper_l6():
    return paper_config(6)


@pytest.fixture()
def example():
    """A fresh copy of the Section 4.1 loop."""
    return example_loop()


@pytest.fixture(scope="session")
def example_schedule(example_machine):
    """The example loop scheduled on the example machine (II = 1)."""
    return modulo_schedule(example_loop().graph, example_machine)
