"""Mutation tests: the differential gate must catch injected allocation bugs.

Each test corrupts a *real* allocation through the
:func:`repro.validate.differential.allocation_for` seam -- the graph and
the analytical pipeline stay untouched, so the reference interpreter still
computes the true values -- and asserts the validator reports the bug with
the right kind and actionable coordinates (op, cycle, register).
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.models import Model
from repro.ir.operation import OpType
from repro.machine.config import paper_config
from repro.pipeline.pipelines import run_evaluation
from repro.regalloc.firstfit import AllocationResult, PlacedLifetime, first_fit
from repro.validate import differential
from repro.validate.differential import allocation_for, validate_evaluation
from repro.workloads.kernels import all_kernels

SEAM = "repro.validate.differential.allocation_for"


@pytest.fixture(scope="module")
def machine():
    return paper_config(6)


@pytest.fixture(scope="module")
def loop():
    return {k.name: k for k in all_kernels()}["daxpy"]


def test_clean_allocation_validates(loop, machine):
    evaluation = run_evaluation(loop, machine, Model.UNIFIED, 32)
    point = validate_evaluation(evaluation)
    assert point.ok, point.describe()
    assert point.reads_checked > 0


def test_clobbered_live_register_is_caught(loop, machine, monkeypatch):
    """All shifts forced to 0: simultaneously live values collide in the
    same rotating cell, and the simulator sees the overwrite."""
    evaluation = run_evaluation(loop, machine, Model.UNIFIED, 32)
    schedule, allocation = allocation_for(evaluation)
    flattened = AllocationResult(
        allocation.result.ii,
        {
            op_id: PlacedLifetime(placed.lifetime, 0, placed.ii)
            for op_id, placed in allocation.result.placements.items()
        },
    )
    corrupted = dataclasses.replace(allocation, result=flattened)
    monkeypatch.setattr(SEAM, lambda _ev: (schedule, corrupted))

    point = validate_evaluation(evaluation)
    assert not point.ok
    mismatch = point.mismatches[0]
    assert mismatch.kind == "register-file"
    assert "overwritten" in mismatch.message
    assert mismatch.op is not None
    assert mismatch.cycle is not None
    assert mismatch.register is not None
    assert "reproduce:" in point.describe()


def test_dropped_spill_reload_is_caught(loop, machine, monkeypatch):
    """A spilled point whose reload placement is deleted: the consumer's
    read finds the reload's value allocated nowhere."""
    evaluation = run_evaluation(loop, machine, Model.UNIFIED, 6)
    assert evaluation.spilled_values > 0, "budget must force spills"
    schedule, allocation = allocation_for(evaluation)
    reloads = [
        op
        for op in schedule.graph.operations
        if op.is_spill and op.optype is OpType.LOAD
    ]
    assert reloads, "spilled schedule must carry sld ops"
    victim = reloads[0]
    placements = dict(allocation.result.placements)
    del placements[victim.op_id]
    corrupted = dataclasses.replace(
        allocation,
        result=AllocationResult(allocation.result.ii, placements),
    )
    monkeypatch.setattr(SEAM, lambda _ev: (schedule, corrupted))

    point = validate_evaluation(evaluation)
    assert not point.ok
    mismatch = point.mismatches[0]
    assert mismatch.kind in ("dataflow", "register-file")
    assert victim.name in (mismatch.op or "") or victim.name in mismatch.message
    assert mismatch.cycle is not None


def test_shrunk_lifetime_is_caught(loop, machine, monkeypatch):
    """The longest lifetime is truncated and the file repacked: first-fit
    reuses its cells early, so a late consumer reads an overwritten value."""
    evaluation = run_evaluation(loop, machine, Model.UNIFIED, 32)
    schedule, allocation = allocation_for(evaluation)
    lts = dict(allocation.lifetimes)
    longest = max(lts.values(), key=lambda lt: lt.end - lt.start)
    assert longest.end - longest.start > schedule.ii, (
        "test needs a lifetime long enough that truncation frees cells"
    )
    lts[longest.op_id] = dataclasses.replace(longest, end=longest.start + 1)
    corrupted = dataclasses.replace(
        allocation,
        lifetimes=lts,
        result=first_fit(lts.values(), schedule.ii),
    )
    monkeypatch.setattr(SEAM, lambda _ev: (schedule, corrupted))

    point = validate_evaluation(evaluation)
    assert not point.ok
    kinds = {mismatch.kind for mismatch in point.mismatches}
    assert kinds & {"register-file", "dataflow"}
    first = point.mismatches[0]
    assert first.op is not None and first.cycle is not None


def test_mutation_seam_is_module_level(monkeypatch):
    """The seam the teeth tests rely on must stay monkeypatchable."""
    sentinel = object()
    monkeypatch.setattr(SEAM, lambda _ev: sentinel)
    assert differential.allocation_for(None) is sentinel
