"""The sampled cross-check's determinism: same seed, same points, always.

The flakiness this pins against: ``repro report --check`` used to be a
candidate for ad-hoc sampling, where two consecutive runs could validate
different loops and a mismatch would come and go.  One RNG seeded from the
caller now drives sample selection end to end, so the sampled set for a
fixed (n_loops, samples, seed) triple is a constant these tests pin.
"""

from __future__ import annotations

from repro.validate import (
    DEFAULT_SAMPLES,
    SAMPLE_MODELS,
    TIERS,
    run_sampled_validation,
    sample_indices,
)
from repro.workloads.suite import DEFAULT_SEED


class TestSampleIndices:
    def test_pinned_for_default_seed(self):
        # The exact sets ``repro report --check`` validates at the default
        # seed; a change here silently revalidates different points.
        assert sample_indices(50, 6, DEFAULT_SEED) == (11, 14, 21, 26, 27, 32)
        assert sample_indices(200, 6, DEFAULT_SEED) == (
            46,
            56,
            87,
            107,
            109,
            130,
        )

    def test_deterministic_across_calls(self):
        first = sample_indices(200, 8, 7)
        assert all(
            sample_indices(200, 8, 7) == first for _ in range(3)
        )

    def test_seed_changes_the_sample(self):
        assert sample_indices(200, 6, 1) != sample_indices(200, 6, 2)

    def test_clamped_to_population(self):
        assert sample_indices(4, 100, DEFAULT_SEED) == (0, 1, 2, 3)
        assert sample_indices(0, 6, DEFAULT_SEED) == ()
        assert sample_indices(5, 0, DEFAULT_SEED) == ()

    def test_sorted_and_unique(self):
        indices = sample_indices(500, 32, DEFAULT_SEED)
        assert list(indices) == sorted(set(indices))


class TestRunSampledValidation:
    def test_small_sample_execution_consistent(self):
        result = run_sampled_validation(n_loops=30, samples=2)
        assert result.ok, result.format()
        assert result.indices == sample_indices(30, 2, DEFAULT_SEED)
        assert len(result.points) == 2 * len(SAMPLE_MODELS) * len(TIERS)
        assert "execution-consistent" in result.describe()
        assert f"seed {DEFAULT_SEED}" in result.describe()

    def test_consecutive_runs_validate_identical_points(self):
        first = run_sampled_validation(n_loops=30, samples=3)
        second = run_sampled_validation(n_loops=30, samples=3)
        assert first.indices == second.indices
        assert [p.reproducer for p in first.points] == [
            p.reproducer for p in second.points
        ]

    def test_reproducer_is_wire_shaped(self):
        result = run_sampled_validation(n_loops=20, samples=1)
        spec = result.points[0].reproducer
        assert spec["loop"]["kind"] == "suite"
        assert spec["loop"]["n_loops"] == 20
        assert spec["machine"] == {
            "type": "machine",
            "kind": "paper",
            "latency": result.latency,
        }
        assert DEFAULT_SAMPLES >= 1  # the report default stays meaningful
