"""The validate surface through every front door: wire types, session,
experiment registry, CLI, and the report's sampled cross-check teeth."""

from __future__ import annotations

import dataclasses

import pytest

from repro.__main__ import main
from repro.api import (
    ExperimentRequest,
    LoopSpec,
    ReportRequest,
    ReportResponse,
    RequestValidationError,
    Session,
    ValidateRequest,
    ValidateResponse,
    request_from_dict,
)
from repro.regalloc.firstfit import AllocationResult, PlacedLifetime
from repro.report.build import generate_report
from repro.validate import allocation_for

SEAM = "repro.validate.differential.allocation_for"


def _flatten_shifts(evaluation):
    """The mutation the teeth tests inject: every shift forced to 0."""
    schedule, allocation = allocation_for(evaluation)
    if hasattr(allocation, "result"):  # unified
        placements = allocation.result.placements
        flat = {
            op_id: PlacedLifetime(placed.lifetime, 0, placed.ii)
            for op_id, placed in placements.items()
        }
        corrupted = dataclasses.replace(
            allocation,
            result=AllocationResult(allocation.result.ii, flat),
        )
    else:  # dual: placements live directly on the allocation
        flat = {
            op_id: PlacedLifetime(placed.lifetime, 0, placed.ii)
            for op_id, placed in allocation.placements.items()
        }
        corrupted = dataclasses.replace(allocation, placements=flat)
    return schedule, corrupted


class TestValidateWire:
    def test_round_trip(self):
        request = ValidateRequest(
            loop=LoopSpec(kind="kernel", name="daxpy"),
            model="swapped",
            register_budget=16,
            tiers=("1", "0"),
        )
        data = request.to_dict()
        assert data["type"] == "validate"
        rebuilt = request_from_dict(data)
        assert rebuilt == request

    def test_bad_tier_rejected(self):
        with pytest.raises(RequestValidationError):
            ValidateRequest(
                loop=LoopSpec(kind="example"), tiers=("batch", "2")
            )

    def test_empty_tiers_rejected(self):
        with pytest.raises(RequestValidationError):
            ValidateRequest(loop=LoopSpec(kind="example"), tiers=())

    def test_bad_model_rejected(self):
        with pytest.raises(RequestValidationError):
            ValidateRequest(loop=LoopSpec(kind="example"), model="octuple")


class TestSessionValidate:
    def test_kernel_point_validates(self):
        with Session() as session:
            response = session.submit(
                ValidateRequest(
                    loop=LoopSpec(kind="kernel", name="daxpy"),
                    model="swapped",
                    register_budget=16,
                )
            )
        assert isinstance(response, ValidateResponse)
        assert response.ok, response.text
        assert response.mismatches == 0
        assert response.points == 3  # one per tier
        assert response.loop_name == "daxpy"

    def test_catches_injected_corruption(self, monkeypatch):
        monkeypatch.setattr(SEAM, _flatten_shifts)
        with Session() as session:
            response = session.validate(
                ValidateRequest(
                    loop=LoopSpec(kind="kernel", name="daxpy"),
                    model="unified",
                    register_budget=32,
                    tiers=("1",),
                )
            )
        assert not response.ok
        assert response.mismatches > 0
        assert "reproduce:" in response.text

    def test_registry_experiment(self):
        with Session() as session:
            response = session.submit(
                ExperimentRequest(
                    name="validate", params={"loops": 20, "samples": 1}
                )
            )
        assert "execution-consistent" in response.text
        assert "indices" in response.text


class TestReportTeeth:
    def test_clean_report_runs_the_cross_check(self):
        result = generate_report(
            n_loops=12, out_dir=None, stamp=False, sim_samples=1
        )
        assert result.sim is not None
        assert result.sim.ok, result.sim.format()
        assert "sim cross-check" in result.text  # provenance footer row
        assert "sim cross-check" in result.summary()

    def test_injected_bug_fails_the_gate(self, monkeypatch):
        monkeypatch.setattr(SEAM, _flatten_shifts)
        result = generate_report(
            n_loops=12, out_dir=None, stamp=False, sim_samples=1
        )
        assert result.sim is not None
        assert not result.sim.ok
        assert result.ok is False  # the --check exit code goes non-zero
        assert any("SIM" in line for line in result.summary().splitlines())

    def test_skipped_by_default(self):
        result = generate_report(n_loops=12, out_dir=None, stamp=False)
        assert result.sim is None
        assert "sim cross-check" not in result.text

    def test_report_response_carries_sim_fields(self):
        with Session() as session:
            response = session.submit(
                ReportRequest(
                    n_loops=12, out_dir=None, check=True, sim_samples=1
                )
            )
        assert isinstance(response, ReportResponse)
        assert response.sim_points > 0
        assert response.sim_mismatches == 0
        assert response.sim_summary is not None
        assert "execution-consistent" in response.sim_summary


class TestCli:
    def test_validate_kernel(self, capsys):
        code = main(["validate", "--kernel", "daxpy", "--budget", "8"])
        out = capsys.readouterr().out
        assert code == 0
        assert "daxpy" in out

    def test_validate_sampled(self, capsys):
        code = main(["validate", "--loops", "20", "--samples", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "sim cross-check" in out

    def test_validate_catches_corruption(self, monkeypatch, capsys):
        monkeypatch.setattr(SEAM, _flatten_shifts)
        code = main(["validate", "--loops", "20", "--samples", "1"])
        assert code == 1
        assert "mismatch" in capsys.readouterr().out
