"""Benchmark + report for Figure 9 (density of memory traffic)."""

from repro.core.models import Model
from repro.experiments.figure9 import format_report, run_figure9


def test_figure9(benchmark, spill_suite):
    cells = benchmark.pedantic(
        run_figure9, args=(spill_suite,), rounds=1, iterations=1
    )
    print()
    print(format_report(cells))
    traffic = {(c.latency, c.budget, c.model): c.total_accesses for c in cells}
    density = {(c.latency, c.budget, c.model): c.density for c in cells}
    for lat in (3, 6):
        for budget in (32, 64):
            # Spill code can only add accesses; the dual models add fewer.
            assert (
                traffic[(lat, budget, Model.UNIFIED)]
                >= traffic[(lat, budget, Model.PARTITIONED)]
                >= traffic[(lat, budget, Model.IDEAL)]
            )
            assert 0.0 <= density[(lat, budget, Model.UNIFIED)] <= 1.0
    for (lat, b, m), value in density.items():
        benchmark.extra_info[f"L{lat}R{b}-{m.value}"] = round(value, 3)
