"""Benchmark + report for Figure 7 (dynamic, cycle-weighted CDFs)."""

from repro.experiments.figure6 import run_figure6
from repro.experiments.figure7 import format_report, run_figure7


def test_figure7(benchmark, bench_suite):
    sets = benchmark.pedantic(
        run_figure7, args=(bench_suite,), rounds=1, iterations=1
    )
    print()
    print(format_report(sets))
    static = run_figure6(bench_suite, latencies=(6,))
    dynamic = next(d for d in sets if d.latency == 6)
    # Paper (Section 5.3): the dynamic improvement of partitioning is larger
    # than the static one -- high-pressure loops dominate execution time, so
    # the unified curve drops more dynamically than the partitioned curve.
    static_gap = static[0].curves["partitioned"].at(64) - static[0].curves[
        "unified"
    ].at(64)
    dynamic_gap = dynamic.curves["partitioned"].at(64) - dynamic.curves[
        "unified"
    ].at(64)
    assert dynamic_gap >= static_gap - 0.02
    benchmark.extra_info["static_gap_at_64"] = round(static_gap * 100, 1)
    benchmark.extra_info["dynamic_gap_at_64"] = round(dynamic_gap * 100, 1)
