"""A1 ablation: the swapping pass's estimator (MaxLive bound vs first-fit).

The paper justifies the MaxLive estimator by allocation cost ("due to the
cost involved to allocate registers, the registers required by each pair
swapped is estimated by a lower bound") and notes that better distribution
algorithms "would provide unappreciable improvements".  This ablation
quantifies both halves of that claim: final register quality and runtime of
the greedy pass under each estimator.
"""

import time

from repro.analysis.reporting import format_table
from repro.core.dualfile import allocate_dual
from repro.core.swapping import SwapEstimator, greedy_swap
from repro.machine.config import paper_config
from repro.sched.modulo import modulo_schedule

N_LOOPS = 40


def _run_ablation(loops):
    machine = paper_config(6)
    rows = []
    totals = {SwapEstimator.MAXLIVE: 0, SwapEstimator.FIRSTFIT: 0}
    times = {SwapEstimator.MAXLIVE: 0.0, SwapEstimator.FIRSTFIT: 0.0}
    wins = 0
    for loop in loops:
        schedule = modulo_schedule(loop.graph, machine)
        regs = {}
        for estimator in totals:
            start = time.perf_counter()
            result = greedy_swap(schedule, estimator=estimator)
            times[estimator] += time.perf_counter() - start
            alloc = allocate_dual(result.schedule, result.assignment)
            regs[estimator] = alloc.registers_required
            totals[estimator] += alloc.registers_required
        if regs[SwapEstimator.FIRSTFIT] < regs[SwapEstimator.MAXLIVE]:
            wins += 1
    rows.append(
        (
            "maxlive (paper)",
            totals[SwapEstimator.MAXLIVE],
            f"{times[SwapEstimator.MAXLIVE]:.2f}s",
        )
    )
    rows.append(
        (
            "firstfit (exact)",
            totals[SwapEstimator.FIRSTFIT],
            f"{times[SwapEstimator.FIRSTFIT]:.2f}s",
        )
    )
    return rows, totals, times, wins


def test_swap_estimator_ablation(benchmark, bench_suite):
    loops = bench_suite[:N_LOOPS]
    rows, totals, times, wins = benchmark.pedantic(
        _run_ablation, args=(loops,), rounds=1, iterations=1
    )
    print()
    print(
        format_table(
            ["estimator", "total registers", "swap-pass time"],
            rows,
            title=f"A1 -- swap estimator ablation over {len(loops)} loops",
        )
    )
    print(f"loops where the exact estimator won: {wins}/{len(loops)}")
    # The paper's claim: the exact estimator buys almost nothing...
    gap = totals[SwapEstimator.MAXLIVE] - totals[SwapEstimator.FIRSTFIT]
    assert gap <= 0.05 * totals[SwapEstimator.FIRSTFIT]
    # ...while the cheap bound is markedly faster.
    assert times[SwapEstimator.MAXLIVE] < times[SwapEstimator.FIRSTFIT]
    benchmark.extra_info["register_gap"] = gap
    benchmark.extra_info["exact_wins"] = wins
