"""A2 ablation: spill victim-selection policy.

The paper picks the value with the highest lifetime and remarks that "more
research is required to develop better algorithms to spill registers".
This ablation compares the paper's policy against spilling by actual
register cost (``ceil(lifetime / II)``) and a deliberately naive
lowest-id policy, measuring total cycles and spill traffic.
"""

from repro.analysis.reporting import format_table
from repro.core.models import Model
from repro.machine.config import paper_config
from repro.spill.spiller import VICTIM_POLICIES, evaluate_loop
from repro.spill.traffic import aggregate_traffic

N_LOOPS = 16
BUDGET = 32


def _run_policies(loops):
    machine = paper_config(6)
    stats = {}
    for policy in VICTIM_POLICIES:
        evaluations = [
            evaluate_loop(
                loop,
                machine,
                Model.UNIFIED,
                register_budget=BUDGET,
                victim_policy=policy,
            )
            for loop in loops
        ]
        stats[policy] = {
            "cycles": sum(ev.cycles for ev in evaluations),
            "spills": sum(ev.spilled_values for ev in evaluations),
            "traffic": aggregate_traffic(evaluations),
        }
    return stats


def test_spill_policy_ablation(benchmark, spill_suite):
    loops = spill_suite[:N_LOOPS]
    stats = benchmark.pedantic(
        _run_policies, args=(loops,), rounds=1, iterations=1
    )
    print()
    print(
        format_table(
            ["policy", "total cycles", "values spilled", "traffic"],
            [
                (p, s["cycles"], s["spills"], s["traffic"])
                for p, s in stats.items()
            ],
            title=(
                f"A2 -- spill victim policy, unified model, "
                f"R={BUDGET}, L=6, {len(loops)} loops"
            ),
        )
    )
    # The paper's policy must not be worse than the naive lowest-id pick.
    assert stats["longest"]["cycles"] <= stats["first"]["cycles"] * 1.05
    for policy, s in stats.items():
        benchmark.extra_info[policy] = s["cycles"]
