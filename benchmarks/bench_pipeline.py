"""Pass-pipeline speedup: monolithic spill loop vs memoized pipeline.

``_monolithic_evaluate`` reproduces the pre-pipeline ``evaluate_loop``
verbatim: every model reschedules round 0 from scratch, and lifetimes are
recomputed inside every allocator call and every victim selection.  The
pipeline path runs the same Figure 8/9 workload through
:func:`repro.pipeline.run_evaluation` with one shared
:class:`~repro.pipeline.ArtifactStore`, which

* schedules each (graph, machine, min II) once for all four models,
* computes lifetimes once per schedule instead of once per allocator call,
* shares the Ideal/Unified allocation and the per-model requirement
  sub-products.

Both paths must produce identical numbers (asserted below); the benchmark
exists to show the pipeline is measurably faster, never slower.
"""

from __future__ import annotations

from repro.analysis.reporting import format_table
from repro.bench import LATENCY, bench_grid
from repro.core.models import Model, required_registers
from repro.machine.config import paper_config
from repro.pipeline import ArtifactStore, run_evaluation
from repro.pipeline.policies import spillable_values
from repro.regalloc.lifetimes import lifetimes
from repro.sched.mii import minimum_ii
from repro.sched.modulo import modulo_schedule
from repro.spill.spiller import spill_value

N_LOOPS = 32


def _monolithic_evaluate(loop, machine, model, register_budget):
    """The pre-pipeline spill loop, with its exact recomputation pattern."""
    graph = loop.graph
    mii = minimum_ii(graph, machine).mii
    budget = None if model is Model.IDEAL else register_budget
    min_ii = 1
    spilled = 0
    ii_increases = 0
    fits = True
    stale = 0
    best: int | None = None

    for _ in range(200):
        schedule = modulo_schedule(graph, machine, min_ii=min_ii)
        requirement = required_registers(schedule, model)
        if budget is None or requirement.registers <= budget:
            break
        lts = lifetimes(schedule)  # recomputed per round, as the old code did
        candidates = spillable_values(schedule.graph)
        victim = (
            max(candidates, key=lambda i: (lts[i].length, -i))
            if candidates
            else None
        )
        if victim is None:
            if best is None or requirement.registers < best:
                best = requirement.registers
                stale = 0
            else:
                stale += 1
                if stale >= 8:
                    fits = False
                    break
            min_ii = schedule.ii + 1
            ii_increases += 1
            continue
        graph = spill_value(graph, victim)
        spilled += 1
    else:
        fits = budget is None or requirement.registers <= budget

    return (
        schedule.ii,
        mii,
        spilled,
        ii_increases,
        fits,
        requirement.registers,
    )


def _grid(loops):
    # The canonical grid lives in repro.bench; every benchmark shares it.
    yield from bench_grid(loops, paper_config(LATENCY))


def _run_monolithic(loops):
    return [
        _monolithic_evaluate(loop, machine, model, budget)
        for loop, machine, model, budget in _grid(loops)
    ]


def _run_pipeline(loops, store):
    results = []
    for loop, machine, model, budget in _grid(loops):
        ev = run_evaluation(loop, machine, model, budget, store=store)
        results.append(
            (
                ev.ii,
                ev.mii,
                ev.spilled_values,
                ev.ii_increases,
                ev.fits,
                ev.requirement.registers,
            )
        )
    return results


def _report(benchmark, n_points):
    seconds = benchmark.stats["mean"] if benchmark.stats else 0.0
    rate = n_points / seconds if seconds else 0.0
    benchmark.extra_info["points_per_sec"] = round(rate, 1)
    return seconds


def test_spill_monolithic(benchmark, spill_suite):
    loops = spill_suite[:N_LOOPS]
    results = benchmark.pedantic(
        _run_monolithic, args=(loops,), rounds=1, iterations=1
    )
    assert all(r[4] or r[5] > 0 for r in results)
    _report(benchmark, len(results))


def test_spill_pipeline_fresh(benchmark, spill_suite):
    """Cold store: the memoized pipeline on the same grid."""
    loops = spill_suite[:N_LOOPS]
    stores = iter([ArtifactStore(max_entries=4096) for _ in range(8)])
    results = benchmark.pedantic(
        lambda: _run_pipeline(loops, next(stores)), rounds=1, iterations=1
    )
    assert results == _run_monolithic(loops), (
        "pipeline diverged from the monolithic reference"
    )
    _report(benchmark, len(results))


def test_spill_pipeline_warm(benchmark, spill_suite):
    """Warm store: a repeated sweep touches no scheduler at all."""
    loops = spill_suite[:N_LOOPS]
    store = ArtifactStore(max_entries=4096)
    _run_pipeline(loops, store)  # prime
    results = benchmark.pedantic(
        lambda: _run_pipeline(loops, store), rounds=1, iterations=1
    )
    print()
    print(
        format_table(
            ["store", "entries", "hits", "misses"],
            [
                (
                    "warm",
                    len(store),
                    store.stats.hits,
                    store.stats.misses,
                )
            ],
            title=(
                f"pipeline artifact store after 2x "
                f"{len(results)}-point Figure 8/9 grid"
            ),
        )
    )
    _report(benchmark, len(results))
