"""Engine throughput: serial vs. pooled vs. warm-cache sweep execution.

Reports points/sec for the same job list run three ways, which is the
engine's whole value proposition: pooling should approach a core-count
speedup on the spill pipeline, and a warm cache should beat both by at
least an order of magnitude.
"""

from __future__ import annotations

import os

from repro.core.models import Model
from repro.engine.cache import ResultCache
from repro.engine.jobs import evaluate_job, pressure_job
from repro.engine.pool import default_workers, run_jobs
from repro.machine.config import paper_config

BENCH_WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", default_workers()))


def _jobs(loops):
    machine = paper_config(6)
    jobs = [pressure_job(loop, machine) for loop in loops]
    for budget in (32, 64):
        for model in (Model.UNIFIED, Model.PARTITIONED, Model.SWAPPED):
            jobs.extend(
                evaluate_job(loop, machine, model, budget) for loop in loops
            )
    return jobs


def _points_per_sec(benchmark, n_jobs):
    if not benchmark.stats:  # --benchmark-disable: nothing was timed
        return 0.0
    seconds = benchmark.stats["mean"]
    rate = n_jobs / seconds if seconds else 0.0
    benchmark.extra_info["points_per_sec"] = round(rate, 1)
    return rate


def test_engine_serial(benchmark, spill_suite):
    jobs = _jobs(spill_suite)
    benchmark.pedantic(
        run_jobs, args=(jobs,), kwargs={"workers": 0}, rounds=1, iterations=1
    )
    _points_per_sec(benchmark, len(jobs))


def test_engine_pooled(benchmark, spill_suite):
    jobs = _jobs(spill_suite)
    benchmark.extra_info["workers"] = BENCH_WORKERS
    benchmark.pedantic(
        run_jobs,
        args=(jobs,),
        kwargs={"workers": BENCH_WORKERS},
        rounds=1,
        iterations=1,
    )
    _points_per_sec(benchmark, len(jobs))


def test_engine_warm_cache(benchmark, spill_suite, tmp_path):
    jobs = _jobs(spill_suite)
    warm = ResultCache(directory=tmp_path / "cache")
    run_jobs(jobs, workers=BENCH_WORKERS, cache=warm)  # prime

    def warm_run():
        # Fresh instance: hits must come from disk, not process memory.
        cache = ResultCache(directory=tmp_path / "cache")
        results = run_jobs(jobs, workers=0, cache=cache)
        assert cache.stats.misses == 0
        return results

    benchmark.pedantic(warm_run, rounds=3, iterations=1)
    _points_per_sec(benchmark, len(jobs))
