"""E-codegen: the code-size cost of software pipelining without rotating
register files and predication (paper, Section 2's hardware assumption).

For every loop: the rotating/predicated listing is exactly II words; the
replicated listing pays ``(stages-1)*II`` words of prologue, the kernel
unrolled by the MVE factor, and ``~(stages-1)*II`` of epilogue.
"""

from repro.analysis.reporting import format_table
from repro.machine.config import paper_config
from repro.sched.codegen import code_size_comparison
from repro.sched.modulo import modulo_schedule

N_LOOPS = 60


def _run_codegen_study(loops):
    machine = paper_config(6)
    rotating = 0
    replicated = 0
    worst_ratio = 0.0
    for loop in loops:
        schedule = modulo_schedule(loop.graph, machine)
        sizes = code_size_comparison(schedule)
        rotating += sizes["rotating"]
        replicated += sizes["replicated"]
        worst_ratio = max(worst_ratio, sizes["replicated"] / sizes["rotating"])
    return rotating, replicated, worst_ratio


def test_codegen_cost(benchmark, bench_suite):
    loops = bench_suite[:N_LOOPS]
    rotating, replicated, worst = benchmark.pedantic(
        _run_codegen_study, args=(loops,), rounds=1, iterations=1
    )
    print()
    print(
        format_table(
            ["style", "total instruction words"],
            [
                ("rotating + predicated", rotating),
                ("replicated (prologue/unroll/epilogue)", replicated),
            ],
            title=f"E-codegen -- code size over {len(loops)} loops (L=6)",
        )
    )
    print(
        f"average expansion: {replicated / rotating:.1f}x, "
        f"worst loop: {worst:.1f}x"
    )
    assert replicated > rotating
    benchmark.extra_info["expansion_x"] = round(replicated / rotating, 2)
    benchmark.extra_info["worst_x"] = round(worst, 2)
