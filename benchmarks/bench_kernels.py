"""Array kernels vs the dict-based reference implementations.

The same Figure 8/9 spill-evaluation grid as ``bench_pipeline.py``, run
twice through :func:`repro.pipeline.run_evaluation` with fresh artifact
stores: once on the dict reference (``use_kernels(False)``) and once on the
array kernels.  Both must produce identical numbers (asserted); the
benchmark exists to keep the speedup visible -- ``python -m repro bench``
emits the same comparison as a machine-readable snapshot, and CI gates on
its ratio.
"""

from __future__ import annotations

from repro import kernel
from repro.bench import LATENCY, bench_grid
from repro.machine.config import paper_config
from repro.pipeline import ArtifactStore, run_evaluation

N_LOOPS = 32


def _run(loops, store):
    results = []
    for loop, machine, model, budget in bench_grid(
        loops, paper_config(LATENCY)
    ):
        ev = run_evaluation(loop, machine, model, budget, store=store)
        results.append(
            (
                ev.ii,
                ev.spilled_values,
                ev.ii_increases,
                ev.fits,
                ev.requirement.registers,
            )
        )
    return results


def _report(benchmark, n_points):
    seconds = benchmark.stats["mean"] if benchmark.stats else 0.0
    benchmark.extra_info["points_per_sec"] = (
        round(n_points / seconds, 1) if seconds else 0.0
    )


def test_grid_legacy_dicts(benchmark, spill_suite):
    loops = spill_suite[:N_LOOPS]
    stores = iter([ArtifactStore(max_entries=4096) for _ in range(8)])

    def run():
        with kernel.use_kernels(False):
            return _run(loops, next(stores))

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    _report(benchmark, len(results))


def test_grid_array_kernels(benchmark, spill_suite):
    loops = spill_suite[:N_LOOPS]
    stores = iter([ArtifactStore(max_entries=4096) for _ in range(8)])

    def run():
        with kernel.use_kernels(True):
            return _run(loops, next(stores))

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    with kernel.use_kernels(False):
        reference = _run(loops, ArtifactStore(max_entries=4096))
    assert results == reference, (
        "array kernels diverged from the dict reference"
    )
    _report(benchmark, len(results))
