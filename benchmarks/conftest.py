"""Shared benchmark fixtures.

Suite sizes are modest by default so ``pytest benchmarks/ --benchmark-only``
finishes in minutes; set ``REPRO_BENCH_LOOPS`` (and ``REPRO_SPILL_LOOPS``)
to reproduce the paper-scale numbers recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import os

import pytest

from repro.workloads.suite import perfect_club_like

BENCH_LOOPS = int(os.environ.get("REPRO_BENCH_LOOPS", "120"))
SPILL_LOOPS = int(os.environ.get("REPRO_SPILL_LOOPS", "32"))


@pytest.fixture(scope="session")
def bench_suite():
    """The distribution-experiment suite."""
    return list(perfect_club_like(BENCH_LOOPS))


@pytest.fixture(scope="session")
def spill_suite():
    """The (smaller) spill-pipeline suite for Figures 8/9."""
    return list(perfect_club_like(BENCH_LOOPS).subset(SPILL_LOOPS))
