"""Benchmark + report for Figure 8 (performance under register budgets)."""

from repro.core.models import Model
from repro.experiments.figure8 import format_report, run_figure8


def test_figure8(benchmark, spill_suite):
    cells = benchmark.pedantic(
        run_figure8, args=(spill_suite,), rounds=1, iterations=1
    )
    print()
    print(format_report(cells))
    perf = {(c.latency, c.budget, c.model): c.performance for c in cells}
    # The paper's qualitative results:
    # (1) with 64 registers the dual models are near-ideal;
    assert perf[(3, 64, Model.PARTITIONED)] >= 0.99
    assert perf[(6, 64, Model.PARTITIONED)] >= 0.95
    # (2) Unified degrades the most at L6/R32;
    assert perf[(6, 32, Model.UNIFIED)] == min(
        perf[(lat, b, m)]
        for lat in (3, 6)
        for b in (32, 64)
        for m in Model
    )
    # (3) the dual file dominates Unified everywhere.
    for lat in (3, 6):
        for b in (32, 64):
            assert perf[(lat, b, Model.PARTITIONED)] >= perf[
                (lat, b, Model.UNIFIED)
            ] - 1e-9
    for (lat, b, m), value in perf.items():
        benchmark.extra_info[f"L{lat}R{b}-{m.value}"] = round(value, 3)
