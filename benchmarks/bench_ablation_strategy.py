"""A3 ablation: the Section 5.4 pressure-reduction alternatives.

The paper considers three ways to live with a small register file and picks
spilling, arguing that rescheduling with an increased II "would produce an
extremely inefficient code".  This ablation pits the paper's naive spiller
against the II-increase strategy and reports cycles and traffic -- with the
per-consumer-reload spiller on a two-port memory system, spill traffic
itself often becomes the II bottleneck, motivating the paper's closing call
for better spill heuristics.
"""

from repro.analysis.reporting import format_table
from repro.core.models import Model
from repro.machine.config import paper_config
from repro.spill.spiller import evaluate_loop
from repro.spill.traffic import aggregate_density, aggregate_traffic

N_LOOPS = 16
BUDGET = 32


def _run_strategies(loops):
    machine = paper_config(6)
    stats = {}
    for strategy in ("spill", "increase_ii"):
        evaluations = [
            evaluate_loop(
                loop,
                machine,
                Model.UNIFIED,
                register_budget=BUDGET,
                pressure_strategy=strategy,
            )
            for loop in loops
        ]
        stats[strategy] = {
            "cycles": sum(ev.cycles for ev in evaluations),
            "traffic": aggregate_traffic(evaluations),
            "density": aggregate_density(evaluations),
            "unfit": sum(1 for ev in evaluations if not ev.fits),
        }
    return stats


def test_pressure_strategy_ablation(benchmark, spill_suite):
    loops = spill_suite[:N_LOOPS]
    stats = benchmark.pedantic(
        _run_strategies, args=(loops,), rounds=1, iterations=1
    )
    print()
    print(
        format_table(
            ["strategy", "total cycles", "traffic", "density", "unfit"],
            [
                (s, v["cycles"], v["traffic"], f"{v['density']:.3f}", v["unfit"])
                for s, v in stats.items()
            ],
            title=(
                f"A3 -- spill vs increase-II, unified model, R={BUDGET}, "
                f"L=6, {len(loops)} loops"
            ),
        )
    )
    # Issue-burst-bound loops (wide graphs whose producers pack densely at
    # any II) may defeat both strategies; what must hold is that neither
    # strategy is uniquely broken...
    assert stats["spill"]["unfit"] == stats["increase_ii"]["unfit"]
    # ...and that only spilling pays with memory traffic.
    assert stats["spill"]["traffic"] >= stats["increase_ii"]["traffic"]
    for strategy, s in stats.items():
        benchmark.extra_info[strategy] = s["cycles"]
