"""Benchmark + report for Tables 2/3/4 (the Section 4.1 example).

Run with ``pytest benchmarks/bench_example_loop.py --benchmark-only -s`` to
see the reproduced tables.
"""

from repro.experiments.example_loop import format_report, run_example


def test_tables_2_3_4(benchmark):
    result = benchmark(run_example)
    print()
    print(format_report(result))
    assert result.unified_registers == 42
    assert result.partitioned_registers == 29
    assert result.swapped_registers == 23
    benchmark.extra_info["unified"] = result.unified_registers
    benchmark.extra_info["partitioned"] = result.partitioned_registers
    benchmark.extra_info["swapped"] = result.swapped_registers
