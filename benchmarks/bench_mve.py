"""E-mve: what the rotating register file buys over modulo variable
expansion (kernel unrolling with static renaming).

The paper assumes rotating-register hardware (Section 2); MVE is the
software alternative on machines without it.  This benchmark compares, over
the suite at latency 6: registers required (MVE per-value ceilings vs
wands-only packing) and the kernel code expansion MVE pays.
"""

from repro.analysis.reporting import format_table
from repro.machine.config import paper_config
from repro.regalloc.allocation import allocate_unified
from repro.regalloc.mve import allocate_mve
from repro.sched.modulo import modulo_schedule

N_LOOPS = 60


def _run_mve_study(loops):
    machine = paper_config(6)
    rotating_regs = 0
    mve_regs = 0
    kernel_ops = 0
    unrolled_ops = 0
    for loop in loops:
        schedule = modulo_schedule(loop.graph, machine)
        rotating_regs += allocate_unified(schedule).registers_required
        mve = allocate_mve(schedule)
        mve_regs += mve.registers_required
        kernel_ops += len(schedule.graph)
        unrolled_ops += mve.code_expansion
    return rotating_regs, mve_regs, kernel_ops, unrolled_ops


def test_mve_vs_rotating(benchmark, bench_suite):
    loops = bench_suite[:N_LOOPS]
    rotating, mve, kernel_ops, unrolled = benchmark.pedantic(
        _run_mve_study, args=(loops,), rounds=1, iterations=1
    )
    print()
    print(
        format_table(
            ["allocation", "total registers", "total kernel ops"],
            [
                ("rotating file + wands-only", rotating, kernel_ops),
                ("modulo variable expansion", mve, unrolled),
            ],
            title=f"E-mve -- rotating file vs MVE over {len(loops)} loops (L=6)",
        )
    )
    print(
        f"register overhead: {100 * (mve - rotating) / rotating:.1f}%  "
        f"code expansion: {unrolled / kernel_ops:.1f}x"
    )
    assert mve >= rotating
    assert unrolled > kernel_ops
    benchmark.extra_info["register_overhead_pct"] = round(
        100 * (mve - rotating) / rotating, 1
    )
    benchmark.extra_info["code_expansion_x"] = round(unrolled / kernel_ops, 2)
