"""E-compact ablation: pressure-aware schedule compaction.

The paper's conclusions defer "better scheduling algorithms" as too costly
for a compiler.  This ablation measures what the cheapest such pass (greedy
slack compaction, see :mod:`repro.sched.compact`) buys on top of each
register-file model, and what it costs in compile time.
"""

import time

from repro.analysis.reporting import format_table
from repro.core.dualfile import allocate_dual
from repro.core.swapping import greedy_swap
from repro.machine.config import paper_config
from repro.regalloc.allocation import allocate_unified
from repro.sched.compact import compact_schedule
from repro.sched.modulo import modulo_schedule

N_LOOPS = 20


def _run_compaction_study(loops):
    machine = paper_config(6)
    totals = {
        "unified": 0,
        "unified+compact": 0,
        "swapped": 0,
        "swapped+compact": 0,
    }
    elapsed = 0.0
    for loop in loops:
        schedule = modulo_schedule(loop.graph, machine)
        totals["unified"] += allocate_unified(schedule).registers_required
        swap = greedy_swap(schedule)
        totals["swapped"] += allocate_dual(
            swap.schedule, swap.assignment
        ).registers_required

        start = time.perf_counter()
        compacted = compact_schedule(schedule).schedule
        elapsed += time.perf_counter() - start
        totals["unified+compact"] += allocate_unified(
            compacted
        ).registers_required
        cswap = greedy_swap(compacted)
        totals["swapped+compact"] += allocate_dual(
            cswap.schedule, cswap.assignment
        ).registers_required
    return totals, elapsed


def test_compaction_ablation(benchmark, spill_suite):
    loops = spill_suite[:N_LOOPS]
    totals, elapsed = benchmark.pedantic(
        _run_compaction_study, args=(loops,), rounds=1, iterations=1
    )
    print()
    print(
        format_table(
            ["pipeline", "total registers"],
            list(totals.items()),
            title=(
                f"E-compact -- slack compaction ablation "
                f"({len(loops)} loops, L=6; compaction took {elapsed:.1f}s)"
            ),
        )
    )
    assert totals["unified+compact"] <= totals["unified"]
    assert totals["swapped+compact"] <= totals["swapped"] + 2
    benchmark.extra_info["unified_gain"] = (
        totals["unified"] - totals["unified+compact"]
    )
    benchmark.extra_info["swapped_gain"] = (
        totals["swapped"] - totals["swapped+compact"]
    )
