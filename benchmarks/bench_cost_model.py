"""Benchmark + report for the Section 3.2 register-file cost analysis."""

from repro.experiments.cost import format_report, run_cost_study


def test_cost_model(benchmark):
    studies = benchmark(
        lambda: [run_cost_study(32), run_cost_study(64)]
    )
    print()
    print(format_report(studies))
    orgs32 = {o.name: o for o in studies[0].organizations}
    # The conclusions' claims, in normalized cost-model units.
    assert orgs32["non-consistent dual"].access_time < orgs32[
        "unified"
    ].access_time
    assert orgs32["non-consistent dual"].total_area < orgs32[
        "doubled unified"
    ].total_area
    benchmark.extra_info["dual_vs_unified_time"] = round(
        orgs32["non-consistent dual"].access_time
        / orgs32["unified"].access_time,
        3,
    )
