"""Benchmark + report for Table 1 (PxLy allocatable-loop percentages)."""

from repro.experiments.table1 import format_report, run_table1


def test_table1(benchmark, bench_suite):
    rows = benchmark.pedantic(
        run_table1, args=(bench_suite,), rounds=1, iterations=1
    )
    print()
    print(format_report(rows))
    by_name = {r.config: r for r in rows}
    # Paper anchors (shape): P1L3 nearly everything fits 64 registers;
    # P2L6 is the most register-hungry configuration.
    assert by_name["P1L3"].static_percent[64] >= 95.0
    assert (
        by_name["P2L6"].static_percent[32]
        <= by_name["P1L3"].static_percent[32]
    )
    for row in rows:
        benchmark.extra_info[row.config] = {
            "static<=64": round(row.static_percent[64], 1),
            "dynamic<=64": round(row.dynamic_percent[64], 1),
        }
