"""A4 ablation: pairwise swaps vs swaps + moves to idle units.

The paper chose post-scheduling *swapping* over cluster-aware scheduling
for simplicity.  Allowing single-operation moves into idle units of the
other cluster is the cheapest step toward the rejected alternative; this
ablation measures how many extra registers it recovers.
"""

from repro.analysis.reporting import format_table
from repro.core.dualfile import allocate_dual
from repro.core.swapping import greedy_swap
from repro.machine.config import paper_config
from repro.sched.modulo import modulo_schedule

N_LOOPS = 40


def _run_moves_ablation(loops):
    machine = paper_config(6)
    totals = {"swaps only": 0, "swaps + moves": 0}
    improved = 0
    for loop in loops:
        schedule = modulo_schedule(loop.graph, machine)
        plain = greedy_swap(schedule)
        moved = greedy_swap(schedule, allow_moves=True)
        plain_regs = allocate_dual(
            plain.schedule, plain.assignment
        ).registers_required
        moved_regs = allocate_dual(
            moved.schedule, moved.assignment
        ).registers_required
        totals["swaps only"] += plain_regs
        totals["swaps + moves"] += moved_regs
        if moved_regs < plain_regs:
            improved += 1
    return totals, improved


def test_swap_moves_ablation(benchmark, bench_suite):
    loops = bench_suite[:N_LOOPS]
    totals, improved = benchmark.pedantic(
        _run_moves_ablation, args=(loops,), rounds=1, iterations=1
    )
    print()
    print(
        format_table(
            ["variant", "total registers"],
            list(totals.items()),
            title=f"A4 -- swap-pass moves ablation over {len(loops)} loops",
        )
    )
    print(f"loops improved by moves: {improved}/{len(loops)}")
    assert totals["swaps + moves"] <= totals["swaps only"]
    benchmark.extra_info["register_gain"] = (
        totals["swaps only"] - totals["swaps + moves"]
    )
    benchmark.extra_info["loops_improved"] = improved
