"""Load harness for ``repro serve``: throughput and tail latency.

Spawns real server subprocesses (single-process and scale-out), drives
them with persistent-connection client threads over the bench grid's
evaluate workload, and reports p50/p99 latency, points/second, and the
sharded-vs-single ``serve_scaleout`` ratio -- the same measurement
``python -m repro bench`` records in BENCH.json, exposed here with knobs
for exploring client counts, workload shapes, and worker counts.

Run from the repo root (the repo ships no installer)::

    PYTHONPATH=src python benchmarks/bench_serve.py --loops 24 --clients 64
    PYTHONPATH=src python benchmarks/bench_serve.py --workload warm
    PYTHONPATH=src python benchmarks/bench_serve.py --url http://host:8357
    PYTHONPATH=src python benchmarks/bench_serve.py --smoke

``--smoke`` is the CI mode: a small sharded run that asserts on client
errors, a p99 bound, and a clean server shutdown, exiting non-zero on
any of them.  ``--url`` skips server spawning and hammers an already
running server instead (workload priming and the scale-out comparison
are skipped; the server's cache state is whatever it is).
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.api.loadtest import (
    ServerProcess,
    WORKLOADS,
    build_workload,
    run_load,
)

#: --smoke: bound on the sharded p99 under ~50 concurrent clients.  The
#: CI host is small and shared, so this is a tripwire for pathological
#: serialization (seconds-long convoys), not a performance promise.
SMOKE_P99_MS = 5000.0
SMOKE_CLIENTS = 50
SMOKE_LOOPS = 8


def _measure(workers: int, bodies, clients: int, engine_workers: int):
    """One fresh server, one load run; returns (stats, clean_exit)."""
    with ServerProcess(
        workers=workers, engine_workers=engine_workers
    ) as server:
        if not bodies:
            raise ValueError("empty workload")
        stats = run_load(server.url, bodies, clients=clients)
        clean = server.shutdown()
    return stats, clean


def _report(label: str, stats, clean=None) -> None:
    line = (
        f"{label:<24} {stats.requests:>6} req "
        f"{stats.points_per_sec:>8.1f} pts/s "
        f"p50 {stats.p50_ms:>7.2f} ms  p99 {stats.p99_ms:>8.2f} ms  "
        f"cached {stats.cached}  throttled {stats.throttled}  "
        f"errors {stats.errors}"
    )
    if clean is not None:
        line += f"  clean_exit={clean}"
    print(line)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--loops", type=int, default=24)
    parser.add_argument("--clients", type=int, default=32)
    parser.add_argument(
        "--workers",
        type=int,
        default=2,
        help="shard processes of the scale-out server (default: 2)",
    )
    parser.add_argument(
        "--engine-workers",
        type=int,
        default=0,
        help="compute workers per serving process (default: 0)",
    )
    parser.add_argument(
        "--workload", choices=WORKLOADS, default="mixed"
    )
    parser.add_argument(
        "--url",
        default=None,
        help="drive an already-running server instead of spawning one",
    )
    parser.add_argument(
        "--json", default=None, metavar="FILE", help="write results as JSON"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=(
            "CI mode: small sharded run; exit non-zero on errors, "
            f"p99 > {SMOKE_P99_MS:.0f} ms, or unclean shutdown"
        ),
    )
    args = parser.parse_args(argv)

    if args.smoke:
        bodies = build_workload("mixed", SMOKE_LOOPS)
        stats, clean = _measure(
            max(2, args.workers), bodies, SMOKE_CLIENTS, args.engine_workers
        )
        _report(f"smoke (workers={max(2, args.workers)})", stats, clean)
        failures = []
        if stats.errors:
            failures.append(
                f"{stats.errors} client error(s): {stats.error_samples[:3]}"
            )
        if stats.requests != len(bodies):
            failures.append(
                f"served {stats.requests} of {len(bodies)} requests"
            )
        if stats.p99_ms > SMOKE_P99_MS:
            failures.append(
                f"p99 {stats.p99_ms:.1f} ms exceeds {SMOKE_P99_MS:.0f} ms"
            )
        if not clean:
            failures.append("server did not shut down cleanly")
        for failure in failures:
            print(f"smoke failure: {failure}", file=sys.stderr)
        return 1 if failures else 0

    bodies = build_workload(args.workload, args.loops)
    print(
        f"workload {args.workload}: {len(bodies)} requests over "
        f"{args.loops} loops, {args.clients} clients"
    )
    results = {}
    if args.url is not None:
        stats = run_load(args.url, bodies, clients=args.clients)
        _report(f"remote {args.url}", stats)
        results["remote"] = stats.as_dict()
    else:
        single, single_clean = _measure(
            0, bodies, args.clients, args.engine_workers
        )
        _report("single-process", single, single_clean)
        results["serve_single"] = single.as_dict()
        sharded, sharded_clean = _measure(
            args.workers, bodies, args.clients, args.engine_workers
        )
        _report(f"sharded (workers={args.workers})", sharded, sharded_clean)
        results["serve_throughput"] = sharded.as_dict()
        if sharded.elapsed:
            ratio = single.elapsed / sharded.elapsed
            results["serve_scaleout"] = round(ratio, 2)
            print(f"serve_scaleout: {ratio:.2f}x")
        if not (single_clean and sharded_clean):
            print("warning: a server exited uncleanly", file=sys.stderr)
            return 1
        if single.errors or sharded.errors:
            print("warning: client errors observed", file=sys.stderr)
            return 1
    if args.json:
        from pathlib import Path

        Path(args.json).write_text(json.dumps(results, indent=2) + "\n")
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
