"""E-clusters: generalizing the non-consistent file beyond two clusters.

The paper's Section 4 notes the technique applies to other organizations;
this study scales the machine to 1, 2 and 4 clusters (one adder, one
multiplier, one load/store unit each) and measures the per-subfile register
requirement of the swapped model.  More clusters shrink each subfile's
local population but promote more values to duplicated (multi-subfile)
status -- the tension this benchmark quantifies.
"""

from repro.analysis.reporting import format_table
from repro.core.dualfile import allocate_dual
from repro.core.swapping import greedy_swap
from repro.machine.config import clustered_config
from repro.regalloc.allocation import allocate_unified
from repro.sched.modulo import modulo_schedule

N_LOOPS = 30
CLUSTER_COUNTS = (1, 2, 4)


def _run_cluster_study(loops):
    rows = []
    for n_clusters in CLUSTER_COUNTS:
        machine = clustered_config(n_clusters, fp_latency=6)
        unified_total = 0
        dual_total = 0
        duplicated = 0
        values = 0
        for loop in loops:
            schedule = modulo_schedule(loop.graph, machine)
            unified_total += allocate_unified(schedule).registers_required
            if n_clusters == 1:
                dual_total += allocate_unified(schedule).registers_required
                values += len(schedule.graph.values())
                continue
            swap = greedy_swap(schedule)
            alloc = allocate_dual(swap.schedule, swap.assignment)
            dual_total += alloc.registers_required
            duplicated += len(alloc.classes.global_ids)
            values += len(alloc.classes.value_clusters)
        rows.append(
            (
                n_clusters,
                unified_total,
                dual_total,
                f"{100 * dual_total / unified_total:.1f}%",
                f"{100 * duplicated / values:.1f}%" if values else "-",
            )
        )
    return rows


def test_cluster_scaling(benchmark, spill_suite):
    loops = spill_suite[:N_LOOPS]
    rows = benchmark.pedantic(
        _run_cluster_study, args=(loops,), rounds=1, iterations=1
    )
    print()
    print(
        format_table(
            ["clusters", "unified regs", "per-subfile regs", "ratio", "duplicated"],
            rows,
            title=(
                f"E-clusters -- per-subfile requirement vs cluster count "
                f"({len(loops)} loops, swapped model, L=6)"
            ),
        )
    )
    by_n = {r[0]: r for r in rows}
    # Wider machines raise absolute pressure, so the per-machine comparison
    # is the subfile-to-unified *ratio*: splitting must shrink it.
    ratio = {n: by_n[n][2] / by_n[n][1] for n in CLUSTER_COUNTS}
    assert ratio[2] < ratio[1]
    assert ratio[4] < ratio[2]
    for n, _, dual, rel, _dup in rows:
        benchmark.extra_info[f"{n}_clusters"] = f"{dual} ({rel})"
