"""Benchmark + report for Figure 6 (static register-requirement CDFs)."""

from repro.experiments.figure6 import format_report, run_figure6


def test_figure6(benchmark, bench_suite):
    sets = benchmark.pedantic(
        run_figure6, args=(bench_suite,), rounds=1, iterations=1
    )
    print()
    print(format_report(sets))
    for dist in sets:
        unified = dist.curves["unified"]
        partitioned = dist.curves["partitioned"]
        swapped = dist.curves["swapped"]
        # The paper's ordering at every grid point (small epsilon: the
        # first-fit packing is not perfectly monotone across models).
        for u, p, s in zip(unified.points, partitioned.points, swapped.points):
            assert p.fraction >= u.fraction - 0.03
            assert s.fraction >= p.fraction - 0.03
        benchmark.extra_info[f"L{dist.latency}"] = {
            "unified<=32": round(unified.at(32) * 100, 1),
            "partitioned<=32": round(partitioned.at(32) * 100, 1),
            "swapped<=32": round(swapped.at(32) * 100, 1),
        }
