"""Microbenchmarks of the core machinery (scheduler, allocator, swapper).

Not a paper artifact -- these keep the pipeline's own costs visible so the
experiment runtimes stay understandable.
"""

from repro.core.dualfile import allocate_dual
from repro.core.swapping import greedy_swap
from repro.regalloc.allocation import allocate_unified
from repro.machine.config import paper_config
from repro.sched.modulo import modulo_schedule
from repro.workloads.synthetic import generate_loop

MACHINE = paper_config(6)
MEDIUM = generate_loop(17)  # a mid-sized synthetic loop
LARGE = max(
    (generate_loop(i) for i in range(60)), key=lambda loop: loop.size
)


def test_schedule_medium_loop(benchmark):
    benchmark(lambda: modulo_schedule(MEDIUM.graph, MACHINE))


def test_schedule_large_loop(benchmark):
    schedule = benchmark(lambda: modulo_schedule(LARGE.graph, MACHINE))
    benchmark.extra_info["ops"] = len(LARGE.graph)
    benchmark.extra_info["ii"] = schedule.ii


def test_allocate_unified_large(benchmark):
    schedule = modulo_schedule(LARGE.graph, MACHINE)
    benchmark(lambda: allocate_unified(schedule))


def test_allocate_dual_large(benchmark):
    schedule = modulo_schedule(LARGE.graph, MACHINE)
    benchmark(lambda: allocate_dual(schedule))


def test_greedy_swap_large(benchmark):
    schedule = modulo_schedule(LARGE.graph, MACHINE)
    result = benchmark.pedantic(
        lambda: greedy_swap(schedule), rounds=3, iterations=1
    )
    benchmark.extra_info["swaps"] = result.n_swaps
