"""E-sim: cycle-level execution cross-check of the analytic metrics.

Runs every hand-written kernel through the verifying simulator under both
unified and swapped-dual allocations and checks the empirically measured
traffic density against the analytic ``mem_ops / (II * bandwidth)``.
"""

import pytest

from repro.core.dualfile import allocate_dual
from repro.core.swapping import greedy_swap
from repro.machine.config import paper_config
from repro.regalloc.allocation import allocate_unified
from repro.sched.modulo import modulo_schedule
from repro.sim.executor import execute_kernel
from repro.workloads.kernels import all_kernels

ITERATIONS = 24


def _simulate_all():
    machine = paper_config(3)
    checked = 0
    for loop in all_kernels():
        schedule = modulo_schedule(loop.graph, machine)
        unified = allocate_unified(schedule)
        report = execute_kernel(schedule, unified, iterations=ITERATIONS)
        analytic = len(schedule.graph.memory_operations()) / (
            schedule.ii * machine.memory_bandwidth
        )
        empirical = report.average_bus_usage(machine.memory_bandwidth)
        assert empirical == pytest.approx(analytic), loop.name

        swap = greedy_swap(schedule)
        dual = allocate_dual(swap.schedule, swap.assignment)
        execute_kernel(swap.schedule, dual, iterations=ITERATIONS)
        checked += 1
    return checked


def test_simulator_cross_check(benchmark):
    checked = benchmark.pedantic(_simulate_all, rounds=1, iterations=1)
    print(f"\nsimulated {checked} kernels x {ITERATIONS} iterations "
          "(unified + swapped dual), all dataflow verified")
    assert checked >= 30
    benchmark.extra_info["kernels"] = checked
