"""Shim for environments whose setuptools cannot build PEP 660 wheels."""

from setuptools import setup

setup()
